#include "sim/transfer.hh"

#include <utility>

#include "base/logging.hh"

namespace lia {
namespace sim {

TransferChannel::TransferChannel(EventQueue &queue, std::string name,
                                 double bandwidth, double latency)
    : queue_(queue), resource_(queue, std::move(name)),
      bandwidth_(bandwidth), latency_(latency)
{
    LIA_ASSERT(bandwidth >= 0, "negative channel bandwidth");
    LIA_ASSERT(latency >= 0, "negative channel latency");
}

double
TransferChannel::transferTime(double bytes) const
{
    LIA_ASSERT(bandwidth_ > 0, resource_.name(),
               ": transfer on a zero-bandwidth channel");
    LIA_ASSERT(bytes >= 0, "negative transfer size");
    return latency_ + bytes / bandwidth_;
}

void
TransferChannel::instrument(obs::EventSink *sink, obs::Track track)
{
    sink_ = sink;
    track_ = track;
}

void
TransferChannel::transfer(double bytes, std::function<void(Tick)> done)
{
    if (sink_) {
        // Wrap the completion so the span (actual start, finish) is
        // known when it fires; the callback itself runs unchanged.
        resource_.submitSpan(
            queue_.now(), transferTime(bytes),
            [this, bytes, done = std::move(done)](Tick start,
                                                  Tick finish) {
                sink_->beginSpan(track_, "transfer", start,
                                 {obs::arg("bytes", bytes)});
                sink_->endSpan(track_, finish);
                done(finish);
            });
        return;
    }
    resource_.submit(queue_.now(), transferTime(bytes),
                     std::move(done));
}

} // namespace sim
} // namespace lia
