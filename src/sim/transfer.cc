#include "sim/transfer.hh"

#include <utility>

#include "base/logging.hh"

namespace lia {
namespace sim {

TransferChannel::TransferChannel(EventQueue &queue, std::string name,
                                 double bandwidth, double latency)
    : queue_(queue), resource_(queue, std::move(name)),
      bandwidth_(bandwidth), latency_(latency)
{
    LIA_ASSERT(bandwidth >= 0, "negative channel bandwidth");
    LIA_ASSERT(latency >= 0, "negative channel latency");
}

double
TransferChannel::transferTime(double bytes) const
{
    LIA_ASSERT(bandwidth_ > 0, resource_.name(),
               ": transfer on a zero-bandwidth channel");
    LIA_ASSERT(bytes >= 0, "negative transfer size");
    return latency_ + bytes / bandwidth_;
}

void
TransferChannel::transfer(double bytes, std::function<void(Tick)> done)
{
    resource_.submit(queue_.now(), transferTime(bytes),
                     std::move(done));
}

} // namespace sim
} // namespace lia
