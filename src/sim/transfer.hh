/**
 * @file
 * Bandwidth-priced transfer channel on the DES kernel.
 *
 * A TransferChannel turns byte counts into occupancy time on a
 * serially-shared link (DDR <-> CXL swap traffic, host <-> device
 * staging): transfers queue FIFO on the underlying Resource and their
 * completion callbacks fire on the event queue, so data movement
 * overlaps simulated compute exactly as DMA overlaps real kernels.
 */

#ifndef LIA_SIM_TRANSFER_HH
#define LIA_SIM_TRANSFER_HH

#include <functional>
#include <string>

#include "obs/sink.hh"
#include "sim/resource.hh"

namespace lia {
namespace sim {

/** One serially-shared, bandwidth-priced data channel. */
class TransferChannel
{
  public:
    /**
     * @param queue      event queue driving completions
     * @param name       channel name (for breakdowns)
     * @param bandwidth  effective bytes/second (> 0 to transfer)
     * @param latency    per-transfer setup latency, seconds
     */
    TransferChannel(EventQueue &queue, std::string name,
                    double bandwidth, double latency = 0);

    /** Seconds one transfer of @p bytes occupies the channel. */
    double transferTime(double bytes) const;

    /**
     * Enqueue a transfer of @p bytes; @p done fires at completion
     * with the completion time. FIFO behind in-flight transfers.
     */
    void transfer(double bytes, std::function<void(Tick)> done);

    /** Whether the channel can move data at all. */
    bool usable() const { return bandwidth_ > 0; }

    /**
     * Emit one occupancy span per transfer onto @p track of @p sink
     * (null detaches). Spans are reconstructed at completion time via
     * Resource::submitSpan, and the channel is FIFO, so they land in
     * start order — per-track monotone, as the trace schema requires.
     * Purely observational: transfer timing is unchanged.
     */
    void instrument(obs::EventSink *sink, obs::Track track);

    double bandwidth() const { return bandwidth_; }
    double busyTime() const { return resource_.busyTime(); }
    const std::string &name() const { return resource_.name(); }

  private:
    EventQueue &queue_;
    Resource resource_;
    double bandwidth_;
    double latency_;
    obs::EventSink *sink_ = nullptr;
    obs::Track track_;
};

} // namespace sim
} // namespace lia

#endif // LIA_SIM_TRANSFER_HH
