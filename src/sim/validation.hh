/**
 * @file
 * Latency-model validation harness.
 *
 * The paper validates its analytical model against the real system and
 * reports a 12% average error (§7 "Memory constraints and latency
 * model"). With the testbed replaced by the discrete-event simulator,
 * the analogous check compares the closed-form stage estimates against
 * DES execution of the same plan across an operating-point grid and
 * reports the error distribution.
 */

#ifndef LIA_SIM_VALIDATION_HH
#define LIA_SIM_VALIDATION_HH

#include <vector>

#include "core/cost_model.hh"
#include "core/policy.hh"

namespace lia {
namespace sim {

/** One validated operating point. */
struct ValidationPoint
{
    model::Workload workload;
    core::Policy policy;
    double analytical = 0;  //!< closed-form stage seconds
    double simulated = 0;   //!< DES makespan seconds

    /** Signed relative error of the closed form vs. the DES. */
    double relativeError() const
    {
        return (analytical - simulated) / simulated;
    }
};

/** Aggregate validation outcome. */
struct ValidationReport
{
    std::vector<ValidationPoint> points;

    /** Mean of |relative error| across points. */
    double meanAbsError() const;

    /** Largest |relative error|. */
    double maxAbsError() const;
};

/**
 * Validate the closed-form overlap model on @p system / @p config
 * across a (B, L, stage) grid. For each point the Eq.-(1)-optimal
 * policy is evaluated both ways.
 *
 * @param batches   batch sizes to sweep
 * @param contexts  context lengths to sweep
 */
ValidationReport validateOverlapModel(
    const hw::SystemConfig &system, const model::ModelConfig &config,
    const std::vector<std::int64_t> &batches,
    const std::vector<std::int64_t> &contexts);

} // namespace sim
} // namespace lia

#endif // LIA_SIM_VALIDATION_HH
