#include "sim/event_queue.hh"

#include "base/logging.hh"

namespace lia {
namespace sim {

void
EventQueue::schedule(Tick when, std::function<void()> callback)
{
    LIA_ASSERT(when >= now_, "cannot schedule in the past: ", when,
               " < ", now_);
    heap_.push(Event{when, nextSeq_++, std::move(callback)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // Move out of the heap before popping so the callback may schedule.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.callback();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

} // namespace sim
} // namespace lia
