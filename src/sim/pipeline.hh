/**
 * @file
 * Discrete-event execution of one inference stage (Fig. 7).
 *
 * Builds the decoder-layer task graph — parameter prefetch streams on
 * the PCIe channel double-buffered two layers deep, activation/KV hops
 * and compute chained through their data dependencies — and executes it
 * on the DES kernel. Unlike the closed-form max(prefetch, chain) model,
 * the simulation captures contention between prefetch and inline
 * traffic on the shared link, and pipeline fill/drain effects.
 */

#ifndef LIA_SIM_PIPELINE_HH
#define LIA_SIM_PIPELINE_HH

#include <vector>

#include "core/cost_model.hh"
#include "sim/task_graph.hh"

namespace lia {
namespace sim {

/** Outcome of simulating one stage across all decoder layers. */
struct PipelineResult
{
    double makespan = 0;   //!< end-to-end seconds for the stage
    double linkBusy = 0;   //!< PCIe channel busy seconds
    double cpuBusy = 0;    //!< CPU stream busy seconds
    double gpuBusy = 0;    //!< GPU stream busy seconds
    std::size_t tasks = 0; //!< tasks executed

    /** Executed task spans (only when collect_spans was requested). */
    std::vector<TaskSpan> spans;

    /** Link utilisation over the makespan. */
    double linkUtilisation() const
    {
        return makespan > 0 ? linkBusy / makespan : 0.0;
    }
};

/**
 * Simulate one stage (all decoder layers) under the given policies.
 *
 * @param cost_model       source of per-sublayer durations
 * @param workload         the stage operating point
 * @param streamed_policy  policy of layers streaming their parameters
 * @param resident_policy  policy of GPU-resident layers
 * @param resident_layers  number of leading GPU-resident layers
 */
PipelineResult simulateStage(const core::CostModel &cost_model,
                             const model::Workload &workload,
                             const core::Policy &streamed_policy,
                             const core::Policy &resident_policy,
                             int resident_layers,
                             bool collect_spans = false);

} // namespace sim
} // namespace lia

#endif // LIA_SIM_PIPELINE_HH
