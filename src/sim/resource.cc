#include "sim/resource.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace lia {
namespace sim {

Resource::Resource(EventQueue &queue, std::string name)
    : queue_(queue), name_(std::move(name))
{
}

void
Resource::submit(Tick ready, double duration,
                 std::function<void(Tick)> done)
{
    submitSpan(ready, duration,
               [done = std::move(done)](Tick, Tick finish) {
                   if (done)
                       done(finish);
               });
}

void
Resource::submitSpan(Tick ready, double duration,
                     std::function<void(Tick, Tick)> done)
{
    LIA_ASSERT(duration >= 0, name_, ": negative duration");
    LIA_ASSERT(ready >= 0, name_, ": negative ready time");
    const Tick start = std::max(ready, freeAt_);
    const Tick finish = start + duration;
    freeAt_ = finish;
    busyTime_ += duration;
    queue_.schedule(finish,
                    [done = std::move(done), start, finish] {
                        if (done)
                            done(start, finish);
                    });
}

} // namespace sim
} // namespace lia
