#include "sim/pipeline.hh"

#include <optional>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "sim/task_graph.hh"

namespace lia {
namespace sim {

PipelineResult
simulateStage(const core::CostModel &cost_model,
              const model::Workload &workload,
              const core::Policy &streamed_policy,
              const core::Policy &resident_policy, int resident_layers,
              bool collect_spans)
{
    const auto layers = cost_model.model().numLayers;
    LIA_ASSERT(resident_layers >= 0 && resident_layers <= layers,
               "bad resident layer count");

    EventQueue queue;
    // PCIe is full duplex: host-to-device traffic (parameter prefetch,
    // operand loads toward the GPU) and device-to-host traffic (loads
    // toward the CPU, KV store-backs) ride independent directions.
    Resource link_down(queue, "pcie-h2d");
    Resource link_up(queue, "pcie-d2h");
    Resource cpu(queue, "cpu");
    Resource gpu(queue, "gpu");
    TaskGraph graph(queue);

    using TaskId = TaskGraph::TaskId;
    // Completion of each layer's final chain task, for cross-layer and
    // double-buffer dependencies.
    std::vector<TaskId> layer_tail;
    layer_tail.reserve(layers);

    for (std::int64_t layer = 0; layer < layers; ++layer) {
        // Resident layers interleave evenly with streamed ones so the
        // link can prefetch ahead while resident layers compute (the
        // placement LIA's Optimization-1 would choose).
        const auto r = static_cast<std::int64_t>(resident_layers);
        const bool resident =
            ((layer + 1) * r) / layers > (layer * r) / layers;
        const core::Policy &policy =
            resident ? resident_policy : streamed_policy;

        // Gather this layer's sublayer timings.
        double prefetch_total = 0;
        std::vector<core::SublayerTiming> timings;
        for (int i = 0; i < model::kNumSublayers; ++i) {
            timings.push_back(cost_model.sublayerTiming(
                workload, policy, i, resident));
            prefetch_total += timings.back().prefetchPcieTime;
        }

        // Parameter prefetch: double-buffered two layers deep — the
        // stream for layer L may begin once layer L-2 has finished
        // computing and released its buffer.
        std::optional<TaskId> prefetch;
        if (prefetch_total > 0) {
            std::vector<TaskId> deps;
            if (layer >= 2)
                deps.push_back(layer_tail[layer - 2]);
            prefetch = graph.addTask(
                "prefetch L" + std::to_string(layer), &link_down,
                prefetch_total, deps);
        }

        // The sequential sublayer chain: inline transfer, compute,
        // then any store-back.
        std::optional<TaskId> prev;
        if (layer > 0)
            prev = layer_tail[layer - 1];
        for (int i = 0; i < model::kNumSublayers; ++i) {
            const auto &t = timings[i];
            const bool on_cpu = t.cpuTime > 0;
            if (t.inlinePcieTime > 0) {
                // Loads travel toward the consuming device.
                Resource *channel = on_cpu ? &link_up : &link_down;
                std::vector<TaskId> deps;
                if (prev)
                    deps.push_back(*prev);
                prev = graph.addTask(
                    "xfer L" + std::to_string(layer) + "." +
                        std::to_string(i),
                    channel, t.inlinePcieTime, deps);
            }
            {
                const double comp = t.cpuTime + t.gpuTime;
                Resource *res = on_cpu ? &cpu : &gpu;
                std::vector<TaskId> deps;
                if (prev)
                    deps.push_back(*prev);
                if (prefetch)
                    deps.push_back(*prefetch);
                prev = graph.addTask(
                    "comp L" + std::to_string(layer) + "." +
                        std::to_string(i),
                    res, comp, deps);
            }
            if (t.storePcieTime > 0) {
                // Store-backs always run device-to-host.
                std::vector<TaskId> deps{*prev};
                prev = graph.addTask(
                    "store L" + std::to_string(layer) + "." +
                        std::to_string(i),
                    &link_up, t.storePcieTime, deps);
            }
        }
        LIA_ASSERT(prev.has_value(), "layer produced no tasks");
        layer_tail.push_back(*prev);
    }

    graph.run();

    PipelineResult result;
    result.makespan = graph.makespan();
    result.linkBusy = link_down.busyTime() + link_up.busyTime();
    result.cpuBusy = cpu.busyTime();
    result.gpuBusy = gpu.busyTime();
    result.tasks = graph.size();
    if (collect_spans)
        result.spans = graph.spans();
    return result;
}

} // namespace sim
} // namespace lia
