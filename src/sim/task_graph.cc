#include "sim/task_graph.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lia {
namespace sim {

TaskGraph::TaskGraph(EventQueue &queue) : queue_(queue)
{
}

TaskGraph::TaskId
TaskGraph::addTask(std::string name, Resource *resource, double duration,
                   const std::vector<TaskId> &deps)
{
    LIA_ASSERT(!ran_, "graph already executed");
    LIA_ASSERT(resource != nullptr || duration == 0,
               "barrier tasks must have zero duration");
    const TaskId id = tasks_.size();
    Task task;
    task.name = std::move(name);
    task.resource = resource;
    task.duration = duration;
    task.pendingDeps = static_cast<int>(deps.size());
    tasks_.push_back(std::move(task));
    for (TaskId dep : deps) {
        LIA_ASSERT(dep < id, "dependency on a later task");
        tasks_[dep].dependents.push_back(id);
    }
    return id;
}

void
TaskGraph::release(TaskId id)
{
    Task &task = tasks_[id];
    if (task.resource) {
        task.resource->submitSpan(
            task.ready, task.duration,
            [this, id](Tick start, Tick finish) {
                complete(id, start, finish);
            });
    } else {
        // Barrier: completes instantly at its ready time.
        const Tick when = std::max(task.ready, queue_.now());
        queue_.schedule(when, [this, id, when] {
            complete(id, when, when);
        });
    }
}

void
TaskGraph::complete(TaskId id, Tick start, Tick finish)
{
    Task &task = tasks_[id];
    LIA_ASSERT(!task.done, task.name, ": completed twice");
    task.done = true;
    task.start = start;
    task.finish = finish;
    for (TaskId next : task.dependents) {
        Task &succ = tasks_[next];
        succ.ready = std::max(succ.ready, finish);
        if (--succ.pendingDeps == 0)
            release(next);
    }
}

void
TaskGraph::run()
{
    LIA_ASSERT(!ran_, "graph already executed");
    ran_ = true;
    for (TaskId id = 0; id < tasks_.size(); ++id) {
        if (tasks_[id].pendingDeps == 0)
            release(id);
    }
    queue_.run();
    for (const auto &task : tasks_)
        LIA_ASSERT(task.done, task.name, ": never ran (cycle?)");
}

Tick
TaskGraph::finishTime(TaskId task) const
{
    LIA_ASSERT(task < tasks_.size(), "bad task id");
    LIA_ASSERT(tasks_[task].done, "graph not executed");
    return tasks_[task].finish;
}

Tick
TaskGraph::startTime(TaskId task) const
{
    LIA_ASSERT(task < tasks_.size(), "bad task id");
    LIA_ASSERT(tasks_[task].done, "graph not executed");
    return tasks_[task].start;
}

std::vector<TaskSpan>
TaskGraph::spans() const
{
    std::vector<TaskSpan> out;
    out.reserve(tasks_.size());
    for (const auto &task : tasks_) {
        LIA_ASSERT(task.done, task.name, ": graph not executed");
        out.push_back(TaskSpan{
            task.name,
            task.resource ? task.resource->name() : std::string(),
            task.start, task.finish});
    }
    return out;
}

Tick
TaskGraph::makespan() const
{
    Tick max_finish = 0;
    for (const auto &task : tasks_)
        max_finish = std::max(max_finish, task.finish);
    return max_finish;
}

} // namespace sim
} // namespace lia
