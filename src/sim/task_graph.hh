/**
 * @file
 * Dependency-driven task graph executed on simulation resources.
 *
 * Tasks declare predecessor tasks and the resource they occupy; the
 * graph releases each task to its resource once every predecessor has
 * completed. This is the execution substrate for validating LIA's
 * closed-form overlap model against true pipelined execution with
 * link/compute contention.
 */

#ifndef LIA_SIM_TASK_GRAPH_HH
#define LIA_SIM_TASK_GRAPH_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/resource.hh"

namespace lia {
namespace sim {

/** One executed task's occupancy interval (for Gantt rendering). */
struct TaskSpan
{
    std::string name;       //!< task label
    std::string resource;   //!< resource it occupied ("" = barrier)
    Tick start = 0;
    Tick finish = 0;
};

/** A DAG of resource-occupying tasks. */
class TaskGraph
{
  public:
    using TaskId = std::size_t;

    explicit TaskGraph(EventQueue &queue);

    /**
     * Add a task occupying @p resource for @p duration seconds once all
     * of @p deps have finished. A null resource makes a zero-width
     * barrier (duration must then be 0).
     */
    TaskId addTask(std::string name, Resource *resource, double duration,
                   const std::vector<TaskId> &deps = {});

    /** Release roots and drain the event queue. */
    void run();

    /** Completion time of @p task (valid after run()). */
    Tick finishTime(TaskId task) const;

    /** Start time of @p task (valid after run()). */
    Tick startTime(TaskId task) const;

    /** All executed spans in task-creation order (after run()). */
    std::vector<TaskSpan> spans() const;

    /** Completion time of the last task (valid after run()). */
    Tick makespan() const;

    /** Number of tasks added. */
    std::size_t size() const { return tasks_.size(); }

  private:
    struct Task
    {
        std::string name;
        Resource *resource = nullptr;
        double duration = 0;
        int pendingDeps = 0;
        std::vector<TaskId> dependents;
        Tick ready = 0;
        Tick start = -1;
        Tick finish = -1;
        bool done = false;
    };

    void release(TaskId id);
    void complete(TaskId id, Tick start, Tick finish);

    EventQueue &queue_;
    std::vector<Task> tasks_;
    bool ran_ = false;
};

} // namespace sim
} // namespace lia

#endif // LIA_SIM_TASK_GRAPH_HH
