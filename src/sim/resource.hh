/**
 * @file
 * Serially-shared simulation resources.
 *
 * A Resource models one unit that processes work items back-to-back: a
 * compute device's execution stream or a PCIe channel. Work submitted
 * while the resource is busy queues FIFO; utilisation statistics are
 * collected for the runtime breakdowns.
 */

#ifndef LIA_SIM_RESOURCE_HH
#define LIA_SIM_RESOURCE_HH

#include <functional>
#include <string>

#include "sim/event_queue.hh"

namespace lia {
namespace sim {

/** One serially-shared resource (device stream or link channel). */
class Resource
{
  public:
    Resource(EventQueue &queue, std::string name);

    /**
     * Submit work that becomes ready at @p ready and occupies the
     * resource for @p duration seconds. @p done runs at completion
     * with the completion time.
     */
    void submit(Tick ready, double duration,
                std::function<void(Tick)> done);

    /**
     * Like submit(), but the completion callback also receives the
     * time the work actually started occupying the resource (for
     * timeline/Gantt reconstruction).
     */
    void submitSpan(Tick ready, double duration,
                    std::function<void(Tick, Tick)> done);

    /** Earliest time new work could start. */
    Tick freeAt() const { return freeAt_; }

    /** Total busy seconds accumulated. */
    double busyTime() const { return busyTime_; }

    const std::string &name() const { return name_; }

  private:
    EventQueue &queue_;
    std::string name_;
    Tick freeAt_ = 0;
    double busyTime_ = 0;
};

} // namespace sim
} // namespace lia

#endif // LIA_SIM_RESOURCE_HH
