/**
 * @file
 * Unit tests for the dependency-driven task graph.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "core/cost_model.hh"
#include "hw/system.hh"
#include "sim/pipeline.hh"
#include "sim/task_graph.hh"

namespace {

using namespace lia::sim;

TEST(TaskGraphTest, ChainSerialises)
{
    EventQueue q;
    Resource r(q, "dev");
    TaskGraph g(q);
    const auto a = g.addTask("a", &r, 1.0);
    const auto b = g.addTask("b", &r, 2.0, {a});
    const auto c = g.addTask("c", &r, 3.0, {b});
    g.run();
    EXPECT_DOUBLE_EQ(g.finishTime(a), 1.0);
    EXPECT_DOUBLE_EQ(g.finishTime(b), 3.0);
    EXPECT_DOUBLE_EQ(g.finishTime(c), 6.0);
    EXPECT_DOUBLE_EQ(g.makespan(), 6.0);
}

TEST(TaskGraphTest, IndependentTasksOnDifferentResourcesOverlap)
{
    EventQueue q;
    Resource r1(q, "r1"), r2(q, "r2");
    TaskGraph g(q);
    g.addTask("a", &r1, 5.0);
    g.addTask("b", &r2, 3.0);
    g.run();
    EXPECT_DOUBLE_EQ(g.makespan(), 5.0);
}

TEST(TaskGraphTest, SharedResourceSerialisesIndependentTasks)
{
    EventQueue q;
    Resource r(q, "r");
    TaskGraph g(q);
    g.addTask("a", &r, 5.0);
    g.addTask("b", &r, 3.0);
    g.run();
    EXPECT_DOUBLE_EQ(g.makespan(), 8.0);
}

TEST(TaskGraphTest, JoinWaitsForAllDependencies)
{
    EventQueue q;
    Resource r1(q, "r1"), r2(q, "r2"), r3(q, "r3");
    TaskGraph g(q);
    const auto a = g.addTask("a", &r1, 2.0);
    const auto b = g.addTask("b", &r2, 7.0);
    const auto c = g.addTask("c", &r3, 1.0, {a, b});
    g.run();
    EXPECT_DOUBLE_EQ(g.finishTime(c), 8.0);
}

TEST(TaskGraphTest, DiamondDependency)
{
    EventQueue q;
    Resource r1(q, "r1"), r2(q, "r2");
    TaskGraph g(q);
    const auto src = g.addTask("src", &r1, 1.0);
    const auto left = g.addTask("left", &r1, 2.0, {src});
    const auto right = g.addTask("right", &r2, 5.0, {src});
    const auto sink = g.addTask("sink", &r1, 1.0, {left, right});
    g.run();
    EXPECT_DOUBLE_EQ(g.finishTime(sink), 7.0);
}

TEST(TaskGraphTest, BarrierTaskHasZeroWidth)
{
    EventQueue q;
    Resource r(q, "r");
    TaskGraph g(q);
    const auto a = g.addTask("a", &r, 2.0);
    const auto barrier = g.addTask("barrier", nullptr, 0.0, {a});
    const auto b = g.addTask("b", &r, 1.0, {barrier});
    g.run();
    EXPECT_DOUBLE_EQ(g.finishTime(barrier), 2.0);
    EXPECT_DOUBLE_EQ(g.finishTime(b), 3.0);
}

TEST(TaskGraphTest, PipelineOverlapsStages)
{
    // Classic two-stage pipeline: transfer(1s) then compute(1s) per
    // item; with 4 items the makespan is fill + N * bottleneck.
    EventQueue q;
    Resource link(q, "link"), dev(q, "dev");
    TaskGraph g(q);
    std::vector<TaskGraph::TaskId> prev_compute;
    for (int i = 0; i < 4; ++i) {
        const auto xfer = g.addTask("x", &link, 1.0);
        std::vector<TaskGraph::TaskId> deps{xfer};
        if (!prev_compute.empty())
            deps.push_back(prev_compute.back());
        prev_compute.push_back(g.addTask("c", &dev, 1.0, deps));
    }
    g.run();
    EXPECT_DOUBLE_EQ(g.makespan(), 5.0);  // 1 fill + 4 compute
    EXPECT_DOUBLE_EQ(link.busyTime(), 4.0);
    EXPECT_DOUBLE_EQ(dev.busyTime(), 4.0);
}

TEST(TaskGraphTest, ForwardDependenciesRejected)
{
    lia::detail::setThrowOnError(true);
    EventQueue q;
    Resource r(q, "r");
    TaskGraph g(q);
    EXPECT_THROW(g.addTask("bad", &r, 1.0, {5}), std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(TaskGraphTest, NonZeroBarrierRejected)
{
    lia::detail::setThrowOnError(true);
    EventQueue q;
    TaskGraph g(q);
    EXPECT_THROW(g.addTask("bad", nullptr, 1.0), std::logic_error);
    lia::detail::setThrowOnError(false);
}

} // namespace

namespace {

using namespace lia::sim;

TEST(TaskSpanTest, SpansRecordOccupancy)
{
    EventQueue q;
    Resource r(q, "dev");
    TaskGraph g(q);
    const auto a = g.addTask("a", &r, 2.0);
    const auto b = g.addTask("b", &r, 3.0, {a});
    g.run();
    EXPECT_DOUBLE_EQ(g.startTime(a), 0.0);
    EXPECT_DOUBLE_EQ(g.startTime(b), 2.0);
    const auto spans = g.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "a");
    EXPECT_EQ(spans[0].resource, "dev");
    EXPECT_DOUBLE_EQ(spans[1].finish - spans[1].start, 3.0);
}

TEST(TaskSpanTest, SpansOnOneResourceNeverOverlap)
{
    EventQueue q;
    Resource r(q, "dev");
    TaskGraph g(q);
    for (int i = 0; i < 8; ++i)
        g.addTask("t" + std::to_string(i), &r, 0.5 + 0.1 * i);
    g.run();
    const auto spans = g.spans();
    for (std::size_t i = 0; i < spans.size(); ++i) {
        for (std::size_t j = i + 1; j < spans.size(); ++j) {
            const bool disjoint =
                spans[i].finish <= spans[j].start + 1e-12 ||
                spans[j].finish <= spans[i].start + 1e-12;
            EXPECT_TRUE(disjoint) << i << " vs " << j;
        }
    }
}

TEST(TaskSpanTest, PipelineSpansCoverBusyTime)
{
    // The sum of span widths on a resource equals its busy time.
    const auto sys = lia::hw::sprA100();
    const auto m = lia::model::opt13b();
    lia::core::CostModel cm(sys, m, {});
    lia::model::Workload w{lia::model::Stage::Decode, 64, 128};
    const auto result = simulateStage(
        cm, w, lia::core::Policy::attentionOnCpu(),
        lia::core::Policy::attentionOnCpu(), 0, true);
    double cpu_span = 0;
    for (const auto &span : result.spans) {
        if (span.resource == "cpu")
            cpu_span += span.finish - span.start;
    }
    EXPECT_NEAR(cpu_span, result.cpuBusy, 1e-9);
}

} // namespace
