/**
 * @file
 * Tests for the latency-model validation harness — the reproduction's
 * analogue of the paper's "12% average error" claim.
 */

#include <gtest/gtest.h>

#include "hw/system.hh"
#include "model/config.hh"
#include "sim/validation.hh"

namespace {

using namespace lia;
using namespace lia::sim;

TEST(ValidationTest, AverageErrorWithinPaperBallpark)
{
    // The paper's analytical model shows 12% average error against
    // the measured system; ours must stay comparably tight against
    // the DES.
    const auto report = validateOverlapModel(
        hw::sprA100(), model::opt30b(), {1, 32, 256, 900},
        {64, 256, 1024});
    EXPECT_LT(report.meanAbsError(), 0.12);
    EXPECT_LT(report.maxAbsError(), 0.30);
    EXPECT_EQ(report.points.size(), 24u);  // 2 stages x 4 B x 3 L
}

TEST(ValidationTest, H100SystemAlsoValidates)
{
    const auto report = validateOverlapModel(
        hw::sprH100(), model::opt66b(), {1, 64, 900}, {128, 1024});
    EXPECT_LT(report.meanAbsError(), 0.12);
}

TEST(ValidationTest, ClosedFormIsOptimisticOrClose)
{
    // The closed form ignores fill/drain and residual contention, so
    // it should rarely exceed the DES by much.
    const auto report = validateOverlapModel(
        hw::sprA100(), model::opt175b(), {1, 64}, {128, 512});
    for (const auto &p : report.points)
        EXPECT_LT(p.relativeError(), 0.05)
            << p.policy.toString();
}

TEST(ValidationTest, ReportStatisticsConsistent)
{
    const auto report = validateOverlapModel(
        hw::sprA100(), model::opt30b(), {16}, {256});
    EXPECT_GE(report.maxAbsError(), report.meanAbsError());
    for (const auto &p : report.points) {
        EXPECT_GT(p.analytical, 0);
        EXPECT_GT(p.simulated, 0);
    }
}

} // namespace
