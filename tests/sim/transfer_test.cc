/**
 * @file
 * Unit tests for the bandwidth-priced transfer channel: byte-count to
 * occupancy-time conversion, FIFO serialisation of overlapping
 * transfers, setup latency, and the unusable (zero-bandwidth) state.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/transfer.hh"

namespace {

using namespace lia::sim;

TEST(TransferChannelTest, PricesBytesOverBandwidthPlusLatency)
{
    EventQueue events;
    TransferChannel channel(events, "link", 2e9, 0.001);
    EXPECT_TRUE(channel.usable());
    EXPECT_DOUBLE_EQ(channel.transferTime(4e9), 0.001 + 2.0);
    EXPECT_DOUBLE_EQ(channel.transferTime(0), 0.001);
}

TEST(TransferChannelTest, CompletionFiresAtTheTransferEnd)
{
    EventQueue events;
    TransferChannel channel(events, "link", 1e9);
    double completed = -1;
    channel.transfer(5e8, [&](Tick now) { completed = now; });
    events.run();
    EXPECT_DOUBLE_EQ(completed, 0.5);
    EXPECT_DOUBLE_EQ(channel.busyTime(), 0.5);
}

TEST(TransferChannelTest, ConcurrentTransfersSerialiseFifo)
{
    EventQueue events;
    TransferChannel channel(events, "link", 1e9);
    std::vector<double> completions;
    // Both enqueued at t=0: the second waits for the first.
    channel.transfer(1e9, [&](Tick now) { completions.push_back(now); });
    channel.transfer(2e9, [&](Tick now) { completions.push_back(now); });
    events.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_DOUBLE_EQ(completions[0], 1.0);
    EXPECT_DOUBLE_EQ(completions[1], 3.0);
    EXPECT_DOUBLE_EQ(channel.busyTime(), 3.0);
}

TEST(TransferChannelTest, ZeroBandwidthIsUnusable)
{
    EventQueue events;
    TransferChannel channel(events, "dead-link", 0);
    EXPECT_FALSE(channel.usable());
}

} // namespace
