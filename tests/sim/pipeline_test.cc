/**
 * @file
 * Tests for the DES decoder-stage pipeline, including validation of
 * the closed-form overlap model against true pipelined execution.
 */

#include <gtest/gtest.h>

#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "sim/pipeline.hh"

namespace {

using namespace lia;
using namespace lia::core;
using lia::model::Stage;
using lia::model::Workload;

class PipelineTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt30b();
    CostModel cm{sys, m, {}};
};

TEST_F(PipelineTest, FullCpuMakespanEqualsSerialSum)
{
    // Without transfers there is nothing to overlap: makespan equals
    // layers x serial layer time.
    Workload w{Stage::Decode, 8, 256};
    const auto timing = cm.layerTiming(w, Policy::fullCpu());
    const auto result = sim::simulateStage(cm, w, Policy::fullCpu(),
                                           Policy::fullCpu(), 0);
    EXPECT_NEAR(result.makespan,
                static_cast<double>(m.numLayers) * timing.serialTime(),
                1e-9);
    EXPECT_DOUBLE_EQ(result.linkBusy, 0.0);
    EXPECT_DOUBLE_EQ(result.gpuBusy, 0.0);
}

TEST_F(PipelineTest, DesMatchesClosedFormWithinTolerance)
{
    // The steady-state overlap model should predict the DES makespan
    // within ~15% for transfer-heavy policies (Fig. 7's pipeline).
    for (auto stage : {Stage::Prefill, Stage::Decode}) {
        Workload w{stage, 64, 256};
        for (auto policy :
             {Policy::fullGpu(), Policy::attentionOnCpu()}) {
            const auto timing = cm.layerTiming(w, policy);
            const double closed_form =
                static_cast<double>(m.numLayers) *
                timing.overlappedTime();
            const auto result =
                sim::simulateStage(cm, w, policy, policy, 0);
            EXPECT_NEAR(result.makespan, closed_form,
                        0.15 * closed_form)
                << policy.toString() << " " << toString(stage);
        }
    }
}

TEST_F(PipelineTest, DesAtLeastAsLongAsClosedForm)
{
    // The closed form ignores link contention between prefetch and
    // inline traffic, so it can only be optimistic.
    Workload w{Stage::Decode, 900, 256};
    for (unsigned mask : {0b000000u, 0b000110u, 0b100001u}) {
        const auto policy = Policy::fromMask(mask);
        const auto timing = cm.layerTiming(w, policy);
        const double closed_form =
            static_cast<double>(m.numLayers) * timing.overlappedTime();
        const auto result = sim::simulateStage(cm, w, policy, policy, 0);
        EXPECT_GE(result.makespan, closed_form * 0.999)
            << policy.toString();
    }
}

TEST_F(PipelineTest, OverlapBeatsSerialExecution)
{
    Workload w{Stage::Decode, 64, 256};
    const auto policy = Policy::attentionOnCpu();
    const auto timing = cm.layerTiming(w, policy);
    const double serial = static_cast<double>(m.numLayers) *
                          timing.serialTime();
    const auto result = sim::simulateStage(cm, w, policy, policy, 0);
    EXPECT_LT(result.makespan, serial);
}

TEST_F(PipelineTest, ResidentLayersShortenTheRun)
{
    Workload w{Stage::Decode, 1, 256};
    const auto policy = Policy::fullGpu();
    const auto none = sim::simulateStage(cm, w, policy, policy, 0);
    const auto half = sim::simulateStage(cm, w, policy, policy, 24);
    EXPECT_LT(half.makespan, none.makespan);
    EXPECT_LT(half.linkBusy, none.linkBusy);
}

TEST_F(PipelineTest, BusyTimesMatchAnalyticalComponents)
{
    Workload w{Stage::Decode, 32, 256};
    const auto policy = Policy::attentionOnCpu();
    const auto timing = cm.layerTiming(w, policy);
    const auto result = sim::simulateStage(cm, w, policy, policy, 0);
    const double layers = static_cast<double>(m.numLayers);
    EXPECT_NEAR(result.cpuBusy, layers * timing.cpuTime, 1e-9);
    EXPECT_NEAR(result.gpuBusy, layers * timing.gpuTime, 1e-9);
    EXPECT_NEAR(result.linkBusy,
                layers * (timing.prefetchPcieTime +
                          timing.inlinePcieTime),
                1e-9);
}

TEST_F(PipelineTest, LinkUtilisationBoundedByOne)
{
    Workload w{Stage::Decode, 900, 512};
    const auto result = sim::simulateStage(
        cm, w, Policy::attentionOnCpu(), Policy::attentionOnCpu(), 0);
    EXPECT_GT(result.linkUtilisation(), 0.0);
    EXPECT_LE(result.linkUtilisation(), 1.0 + 1e-9);
}

TEST_F(PipelineTest, TaskCountScalesWithLayers)
{
    Workload w{Stage::Decode, 8, 128};
    const auto result = sim::simulateStage(
        cm, w, Policy::fullGpu(), Policy::fullGpu(), 0);
    // At least one compute task per sublayer per layer.
    EXPECT_GE(result.tasks, static_cast<std::size_t>(
        m.numLayers * model::kNumSublayers));
}

} // namespace
