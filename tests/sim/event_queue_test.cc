/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "base/logging.hh"
#include "sim/event_queue.hh"

namespace {

using namespace lia::sim;

TEST(EventQueueTest, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, SimultaneousEventsKeepFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] {
        ++fired;
        q.schedule(2.0, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, SchedulingInThePastPanics)
{
    lia::detail::setThrowOnError(true);
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_THROW(q.schedule(1.0, [] {}), std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(EventQueueTest, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 5u);
}

TEST(EventQueueTest, StepExecutesExactlyOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] { ++fired; });
    q.schedule(2.0, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

} // namespace
