/**
 * @file
 * Unit tests for serially-shared simulation resources.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.hh"

namespace {

using namespace lia::sim;

TEST(ResourceTest, BackToBackWorkSerialises)
{
    EventQueue q;
    Resource r(q, "dev");
    std::vector<Tick> finishes;
    r.submit(0.0, 2.0, [&](Tick t) { finishes.push_back(t); });
    r.submit(0.0, 3.0, [&](Tick t) { finishes.push_back(t); });
    q.run();
    ASSERT_EQ(finishes.size(), 2u);
    EXPECT_DOUBLE_EQ(finishes[0], 2.0);
    EXPECT_DOUBLE_EQ(finishes[1], 5.0);
    EXPECT_DOUBLE_EQ(r.busyTime(), 5.0);
}

TEST(ResourceTest, ReadyTimeDelaysStart)
{
    EventQueue q;
    Resource r(q, "dev");
    Tick finish = -1;
    r.submit(10.0, 1.0, [&](Tick t) { finish = t; });
    q.run();
    EXPECT_DOUBLE_EQ(finish, 11.0);
    // Busy time counts occupancy, not waiting.
    EXPECT_DOUBLE_EQ(r.busyTime(), 1.0);
}

TEST(ResourceTest, IdleGapsAreNotBusy)
{
    EventQueue q;
    Resource r(q, "dev");
    r.submit(0.0, 1.0, nullptr);
    r.submit(5.0, 1.0, nullptr);
    q.run();
    EXPECT_DOUBLE_EQ(r.busyTime(), 2.0);
    EXPECT_DOUBLE_EQ(r.freeAt(), 6.0);
}

TEST(ResourceTest, ZeroDurationWorkCompletesInstantly)
{
    EventQueue q;
    Resource r(q, "dev");
    Tick finish = -1;
    r.submit(2.0, 0.0, [&](Tick t) { finish = t; });
    q.run();
    EXPECT_DOUBLE_EQ(finish, 2.0);
}

TEST(ResourceTest, NullDoneCallbackIsAllowed)
{
    EventQueue q;
    Resource r(q, "dev");
    r.submit(0.0, 1.0, nullptr);
    EXPECT_NO_THROW(q.run());
}

} // namespace
