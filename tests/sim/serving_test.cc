/**
 * @file
 * Tests for the serving-queue simulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/serving.hh"

namespace {

using namespace lia;
using namespace lia::sim;

ServingConfig
baseConfig()
{
    ServingConfig cfg;
    cfg.arrivalRatePerSecond = 0.1;
    cfg.requests = 500;
    cfg.seed = 21;
    return cfg;
}

TEST(ServingTest, ConstantServiceProducesExpectedUtilisation)
{
    // lambda = 0.1/s, service = 4 s -> rho = 0.4.
    auto cfg = baseConfig();
    const auto result =
        simulateServing(cfg, [](const trace::Request &) {
            return 4.0;
        });
    EXPECT_EQ(result.serviceTime.count(), 500u);
    EXPECT_NEAR(result.utilisation, 0.4, 0.06);
    EXPECT_TRUE(result.stable());
}

TEST(ServingTest, ResponseEqualsWaitPlusService)
{
    auto cfg = baseConfig();
    cfg.requests = 100;
    const auto result =
        simulateServing(cfg, [](const trace::Request &) {
            return 2.0;
        });
    EXPECT_NEAR(result.responseTime.mean(),
                result.waitingTime.mean() +
                    result.serviceTime.mean(),
                1e-9);
    EXPECT_GE(result.waitingTime.min(), 0.0);
}

TEST(ServingTest, MM1WaitMatchesTheory)
{
    // Exponential-ish service via the trace? Use constant service:
    // M/D/1 mean wait = rho * s / (2 (1 - rho)).
    auto cfg = baseConfig();
    cfg.requests = 20'000;
    cfg.arrivalRatePerSecond = 0.15;
    const double s = 4.0;
    const double rho = 0.15 * s;  // 0.6
    const auto result = simulateServing(
        cfg, [s](const trace::Request &) { return s; });
    const double theory = rho * s / (2.0 * (1.0 - rho));  // 3.0 s
    EXPECT_NEAR(result.waitingTime.mean(), theory, 0.5);
}

TEST(ServingTest, OverloadSaturatesUtilisation)
{
    auto cfg = baseConfig();
    cfg.arrivalRatePerSecond = 2.0;  // far beyond 1/service
    const auto result =
        simulateServing(cfg, [](const trace::Request &) {
            return 4.0;
        });
    EXPECT_FALSE(result.stable());
    EXPECT_GT(result.waitingTime.p50(), 100.0);
}

TEST(ServingTest, FasterServiceLowersWaits)
{
    auto cfg = baseConfig();
    const auto slow = simulateServing(
        cfg, [](const trace::Request &) { return 6.0; });
    const auto fast = simulateServing(
        cfg, [](const trace::Request &) { return 1.0; });
    EXPECT_LT(fast.waitingTime.mean(), slow.waitingTime.mean());
    EXPECT_LT(fast.utilisation, slow.utilisation);
}

TEST(ServingTest, ServiceTimeSeesTraceLengths)
{
    // Latency proportional to request length: service stats must
    // inherit the trace's variability.
    auto cfg = baseConfig();
    cfg.requests = 300;
    const auto result =
        simulateServing(cfg, [](const trace::Request &r) {
            return 1e-3 * static_cast<double>(r.lIn + 8 * r.lOut);
        });
    EXPECT_GT(result.serviceTime.stddev(), 0.0);
    EXPECT_GT(result.serviceTime.max(),
              2.0 * result.serviceTime.min());
}

TEST(PoissonProcessTest, DeterministicMonotoneAndCalibrated)
{
    // The serving queue and the serve:: engine share this generator,
    // so equal seeds must mean equal arrival sequences.
    PoissonProcess a(0.5, 42), b(0.5, 42), c(0.5, 43);
    double prev = 0, sum = 0;
    bool seeds_differ = false;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        const double t = a.next();
        EXPECT_DOUBLE_EQ(t, b.next());
        seeds_differ = seeds_differ || t != c.next();
        EXPECT_GT(t, prev);
        sum += t - prev;
        prev = t;
    }
    EXPECT_TRUE(seeds_differ);
    EXPECT_NEAR(sum / n, 2.0, 0.05);  // mean gap = 1/rate
}

TEST(ServingTest, DeterministicForSeed)
{
    auto cfg = baseConfig();
    cfg.requests = 50;
    auto svc = [](const trace::Request &r) {
        return 0.01 * static_cast<double>(r.lOut);
    };
    const auto a = simulateServing(cfg, svc);
    const auto b = simulateServing(cfg, svc);
    EXPECT_DOUBLE_EQ(a.responseTime.mean(), b.responseTime.mean());
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

} // namespace

namespace {

using lia::trace::Request;

TEST(BatchedServingTest, BatchesFormUpToTheCeiling)
{
    lia::sim::ServingConfig cfg;
    cfg.arrivalRatePerSecond = 10.0;  // dense arrivals
    cfg.requests = 400;
    cfg.seed = 5;
    lia::sim::BatchingConfig batching;
    batching.window = 2.0;
    batching.maxBatch = 8;
    int max_seen = 0;
    const auto result = lia::sim::simulateBatchedServing(
        cfg, batching,
        [&](std::int64_t batch, const Request &) {
            max_seen = std::max<int>(max_seen, static_cast<int>(batch));
            return 1.0;
        });
    EXPECT_EQ(result.responseTime.count(), 400u);
    EXPECT_LE(max_seen, 8);
    EXPECT_GE(max_seen, 4);  // dense arrivals should fill batches
}

TEST(BatchedServingTest, BatchingRaisesThroughputUnderLoad)
{
    // Batch service costs amortise (sublinear in B), so batched
    // serving sustains offered load a B=1 server cannot.
    lia::sim::ServingConfig cfg;
    cfg.arrivalRatePerSecond = 1.0;
    cfg.requests = 300;
    cfg.seed = 6;
    auto sublinear = [](std::int64_t batch, const Request &) {
        return 2.0 + 0.1 * static_cast<double>(batch);
    };
    const auto single = lia::sim::simulateServing(
        cfg, [&](const Request &r) { return sublinear(1, r); });
    lia::sim::BatchingConfig batching;
    batching.window = 4.0;
    batching.maxBatch = 64;
    const auto batched =
        lia::sim::simulateBatchedServing(cfg, batching, sublinear);
    EXPECT_FALSE(single.stable());
    EXPECT_LT(batched.responseTime.p95(),
              single.responseTime.p95());
}

TEST(BatchedServingTest, ZeroWindowDegeneratesTowardSingles)
{
    lia::sim::ServingConfig cfg;
    cfg.arrivalRatePerSecond = 0.05;  // sparse arrivals
    cfg.requests = 100;
    cfg.seed = 7;
    lia::sim::BatchingConfig batching;
    batching.window = 0.0;
    batching.maxBatch = 64;
    int max_seen = 0;
    lia::sim::simulateBatchedServing(
        cfg, batching,
        [&](std::int64_t batch, const Request &) {
            max_seen = std::max<int>(max_seen, static_cast<int>(batch));
            return 0.5;
        });
    EXPECT_EQ(max_seen, 1);
}

TEST(BatchedServingTest, WaitIncludesTheWindow)
{
    lia::sim::ServingConfig cfg;
    cfg.arrivalRatePerSecond = 0.01;  // effectively lone requests
    cfg.requests = 50;
    cfg.seed = 8;
    lia::sim::BatchingConfig batching;
    batching.window = 10.0;
    batching.maxBatch = 64;
    const auto result = lia::sim::simulateBatchedServing(
        cfg, batching,
        [](std::int64_t, const Request &) { return 1.0; });
    // Lone requests dispatch at their own arrival (no batch-mates to
    // wait for once the window has no further arrivals)... the window
    // closes at the last in-window arrival, so waits stay small.
    EXPECT_LT(result.waitingTime.mean(), batching.window);
}

} // namespace
