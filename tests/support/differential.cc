#include "support/differential.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "serve/runtime_backend.hh"
#include "support/serving_checks.hh"

namespace lia {
namespace test {

using model::Stage;
using serve::RequestState;
using serve::SchedulerPolicy;

const hw::SystemConfig &
tinySystem(bool cxl)
{
    static const hw::SystemConfig with = hw::withCxl(hw::sprA100());
    static const hw::SystemConfig without = hw::sprA100();
    return cxl ? with : without;
}

const model::ModelConfig &
tinyServedModel()
{
    // d=32, 2 layers, 2 heads: one KV token is 256 bytes, a full
    // forward is microseconds — 500+ executed serving runs stay fast
    // while byte budgets in the tens of KB force real preemption.
    static const model::ModelConfig model =
        model::tinyOpt(32, 2, 2, 256, 101);
    return model;
}

std::shared_ptr<const serve::IterationCostCache>
tinySharedCosts(bool cxl)
{
    // Must mirror the pricing preset ServingEngine builds internally.
    static const auto make = [](bool has_cxl) {
        core::EngineConfig cfg;
        cfg.costOptions.executionAwareObjective = true;
        cfg.autoMemoryPolicy = has_cxl;
        cfg.specDraftModel = model::draftModelConfig(tinyServedModel());
        static std::vector<std::unique_ptr<core::EngineModel>> keep;
        keep.push_back(std::make_unique<core::EngineModel>(
            tinySystem(has_cxl), tinyServedModel(), cfg));
        return std::make_shared<const serve::IterationCostCache>(
            *keep.back(), 32);
    };
    static const auto with = make(true);
    static const auto without = make(false);
    return cxl ? with : without;
}

std::size_t
envScenarioCount(const char *env_name, std::size_t fallback)
{
    if (const char *env = std::getenv(env_name)) {
        const long scenarios = std::atol(env);
        if (scenarios > 0)
            return static_cast<std::size_t>(scenarios);
    }
    return fallback;
}

serve::Config
randomTinyConfig(std::mt19937_64 &rng, double decodeStepSeconds)
{
    serve::Config cfg;
    cfg.requests =
        std::uniform_int_distribution<std::size_t>(4, 12)(rng);
    cfg.seed = std::uniform_int_distribution<std::uint64_t>(
        1, 1u << 30)(rng);

    // Only the code trace fits tiny contexts (conversation outputs
    // overflow a 96-token window).
    cfg.trace = trace::TraceKind::Code;
    const std::int64_t contexts[] = {96, 128, 160};
    cfg.maxContext =
        contexts[std::uniform_int_distribution<int>(0, 2)(rng)];

    const std::int64_t batches[] = {2, 3, 4, 8};
    cfg.maxBatch =
        batches[std::uniform_int_distribution<int>(0, 3)(rng)];

    const std::int64_t chunks[] = {0, 16, 48};
    cfg.prefillChunkTokens =
        chunks[std::uniform_int_distribution<int>(0, 2)(rng)];

    const double watermarks[] = {0.0, 0.1, 0.3};
    cfg.admissionWatermark =
        watermarks[std::uniform_int_distribution<int>(0, 2)(rng)];

    // One KV token is 256 bytes, a request's full horizon 10-41 KB:
    // these caps admit only a few requests (and reject the widest
    // outright), so optimistic admission genuinely overcommits and
    // decode growth forces preemption.
    const double caps[] = {12288, 16384, 24576, 32768, 49152};
    cfg.kvBudgetCapBytes =
        caps[std::uniform_int_distribution<int>(0, 4)(rng)];

    // Offered load scaled off the cost model's own decode price: mean
    // interarrival 10-60 decode steps, well under a request's ~32-step
    // service time, so queues form whatever the absolute times are.
    cfg.arrivalRatePerSecond =
        1.0 / (decodeStepSeconds *
               std::uniform_real_distribution<double>(10.0, 60.0)(rng));

    // Prefix caching on half the scenarios, with and without Zipfian
    // prompt sharing (pools make hits common; without them the
    // insert/evict machinery still runs on mostly-cold lookups).
    cfg.prefix.enabled =
        std::uniform_int_distribution<int>(0, 1)(rng) == 1;
    const std::int64_t pools[] = {0, 2, 3};
    cfg.prefix.sharingPools =
        pools[std::uniform_int_distribution<int>(0, 2)(rng)];
    const double exponents[] = {1.0, 1.5};
    cfg.prefix.sharingExponent =
        exponents[std::uniform_int_distribution<int>(0, 1)(rng)];
    cfg.prefix.sharedFraction = 0.5;
    const std::int64_t prefix_blocks[] = {8, 16};
    cfg.prefix.blockTokens =
        prefix_blocks[std::uniform_int_distribution<int>(0, 1)(rng)];

    // Speculative decoding on half the scenarios. Small k keeps verify
    // batches inside the tiny context; the acceptance rate only steers
    // the analytic fallback oracle (backed scenarios replay the real
    // verify outcomes instead — see runDifferentialScenario).
    cfg.spec.enabled =
        std::uniform_int_distribution<int>(0, 1)(rng) == 1;
    const std::int64_t spec_ks[] = {1, 2, 4};
    cfg.spec.draftTokens =
        spec_ks[std::uniform_int_distribution<int>(0, 2)(rng)];
    const double accept_rates[] = {0.5, 0.8, 1.0};
    cfg.spec.acceptRate =
        accept_rates[std::uniform_int_distribution<int>(0, 2)(rng)];
    return cfg;
}

namespace {

/**
 * RuntimeBackend that records the verified accept count of every
 * speculation step, keyed by (request id, per-request step index).
 * The analytic leg of a spec-enabled scenario replays these through
 * Config::spec.oracle so both paths take bit-identical
 * variable-token decode steps.
 */
class RecordingBackend : public serve::RuntimeBackend
{
  public:
    RecordingBackend(
        const hw::SystemConfig &system,
        const model::ModelConfig &model, const serve::Config &config,
        std::map<std::uint64_t, std::vector<std::int64_t>> &accepts)
        : RuntimeBackend(system, model, config), accepts_(accepts)
    {
    }

    std::int64_t speculate(const serve::Request &request,
                           std::int64_t draft_tokens) override
    {
        const std::int64_t accepted =
            RuntimeBackend::speculate(request, draft_tokens);
        accepts_[request.id].push_back(accepted);
        return accepted;
    }

  private:
    std::map<std::uint64_t, std::vector<std::int64_t>> &accepts_;
};

/** Compare one request's served outputs against an uninterrupted
 *  reference generation on the same weights. */
void
checkContinuity(serve::RuntimeBackend &backend,
                const serve::Request &request,
                DifferentialOutcome &outcome)
{
    const std::vector<std::int64_t> &served =
        backend.outputs(request.id);
    const std::vector<std::int64_t> reference =
        backend.referenceOutputs(request);
    EXPECT_EQ(served, reference)
        << "request " << request.id << " (lIn " << request.lIn
        << ", lOut " << request.lOut << ", " << request.recomputes
        << " recomputes, " << request.swapOuts
        << " swap-outs) diverged from its uninterrupted generation";
    ++outcome.continuityChecked;
    if (request.preemptions > 0)
        ++outcome.preemptedContinuityChecked;
}

} // namespace

void
runDifferentialScenario(const serve::Config &config, bool cxl,
                        DifferentialOutcome &outcome)
{
    // The backed leg runs first: when speculation is on, the runtime's
    // verify pass decides the real accept counts, the recording
    // backend captures them, and the analytic leg replays them through
    // the acceptance oracle — the backend stays passive (it never
    // *changes* a decision, the oracle merely reproduces the counts
    // the engine already committed to).
    std::map<std::uint64_t, std::vector<std::int64_t>> recorded;
    serve::Config cfg = config;
    if (cfg.spec.enabled)
        cfg.spec.oracle = [&recorded](std::uint64_t id, std::int64_t k,
                                      std::uint64_t step) {
            (void)k;
            return recorded.at(id).at(step);
        };

    serve::ServingEngine engine(tinySystem(cxl), tinyServedModel(),
                                cfg, tinySharedCosts(cxl));
    RecordingBackend backend(tinySystem(cxl), tinyServedModel(), cfg,
                             recorded);
    const serve::Result backed = engine.run(&backend);
    const serve::Result analytic = engine.run();

    // The backend must be passive: both paths took bit-identical
    // scheduling decisions, and both satisfy the serving invariants.
    expectIdenticalRuns(analytic, backed);
    checkServingInvariants(backed, config);

    // Executed work matches the engine's accounting item for item,
    // and the runtime holds no KV after the drain.
    const auto &counters = backend.counters();
    const auto &mx = backed.metrics;
    EXPECT_EQ(counters.prefillChunks, mx.prefillChunks);
    EXPECT_EQ(counters.evictions, mx.recomputes);
    EXPECT_EQ(counters.recomputesVerified, mx.recomputes);
    EXPECT_EQ(counters.swapOuts, mx.swapOuts);
    EXPECT_EQ(counters.swapIns, mx.swapIns);
    EXPECT_DOUBLE_EQ(counters.swapOutBytes, mx.swapOutBytes);
    EXPECT_DOUBLE_EQ(counters.swapInBytes, mx.swapInBytes);
    EXPECT_EQ(static_cast<std::int64_t>(counters.tokensProduced()),
              mx.tokensGenerated);
    EXPECT_DOUBLE_EQ(backend.liveKvBytes(), 0.0);
    EXPECT_DOUBLE_EQ(backend.swappedKvBytes(), 0.0);

    // Speculation lockstep: every draft+verify round the runtime ran
    // is one the engine accounted, token for token.
    EXPECT_EQ(counters.specSteps, mx.specSteps);
    EXPECT_EQ(static_cast<std::int64_t>(counters.specDrafted),
              mx.specDraftedTokens);
    EXPECT_EQ(static_cast<std::int64_t>(counters.specAccepted),
              mx.specAcceptedTokens);
    if (!config.spec.enabled) {
        EXPECT_EQ(mx.specSteps, 0u);
        EXPECT_EQ(counters.specSteps, 0u);
    }

    // Prefix-cache lockstep: every engine-side hit was attached and
    // digest-verified by the runtime, and the mirrored node bytes at
    // drain equal the engine's retained cache account.
    EXPECT_EQ(counters.prefixAttaches, mx.prefixHits);
    EXPECT_EQ(counters.prefixHitsVerified, mx.prefixHits);
    EXPECT_EQ(static_cast<std::int64_t>(counters.prefixAttachTokens),
              mx.prefixHitTokens);
    EXPECT_DOUBLE_EQ(backend.cacheDdrBytes() + backend.cacheCxlBytes(),
                     backed.prefixCacheBytesAtDrain);
    if (!config.prefix.enabled) {
        EXPECT_EQ(mx.prefixLookups, 0u);
        EXPECT_DOUBLE_EQ(backed.prefixCacheBytesAtDrain, 0.0);
    }

    // Token continuity: every preempted completion must match its
    // uninterrupted reference bit for bit; one never-preempted
    // completion per scenario cross-checks the plain path too.
    bool plainChecked = false;
    for (const auto &request : backed.requests) {
        if (request.state != RequestState::Finished)
            continue;
        // Speculated completions always check: their reference is the
        // plain (non-speculative) greedy generation, so this is the
        // spec-on == spec-off bit-identity property, end to end —
        // including requests preempted or swapped mid-speculation.
        if (request.preemptions > 0 || request.specSteps > 0) {
            checkContinuity(backend, request, outcome);
        } else if (!plainChecked) {
            checkContinuity(backend, request, outcome);
            plainChecked = true;
        }
        if (request.specSteps > 0 && request.preemptions > 0)
            ++outcome.specPreemptedRequests;
    }

    ++outcome.scenarios;
    outcome.preemptions += mx.preemptions;
    outcome.recomputes += mx.recomputes;
    outcome.swapOuts += mx.swapOuts;
    outcome.swapIns += mx.swapIns;
    outcome.prefillChunks += mx.prefillChunks;
    outcome.rejectedCapacity += mx.rejectedCapacity;
    outcome.prefixHits += mx.prefixHits;
    outcome.prefixInserts += counters.prefixInserts;
    outcome.prefixReclaims +=
        counters.prefixEvictions + counters.prefixDemotions;
    outcome.specSteps += counters.specSteps;
    outcome.specDrafted += counters.specDrafted;
    outcome.specAccepted += counters.specAccepted;
}

} // namespace test
} // namespace lia
