/**
 * @file
 * Reusable serving-run checkers shared by the scheduler property
 * fuzzer, the engine tests, and the differential harness.
 *
 * checkServingInvariants() asserts the policy-independent invariants
 * every serving run must satisfy (budget respected, byte account
 * drained to zero, all requests terminal, preemption accounting
 * consistent). expectIdenticalRuns() asserts two runs are
 * bit-identical in scheduling decisions, timings, and per-request
 * lifecycles — the determinism property, and the analytical-vs-backed
 * agreement the differential tests rest on.
 */

#ifndef LIA_TESTS_SUPPORT_SERVING_CHECKS_HH
#define LIA_TESTS_SUPPORT_SERVING_CHECKS_HH

#include "obs/chrome_trace.hh"
#include "serve/engine.hh"
#include "serve/runtime_backend.hh"

namespace lia {
namespace test {

/** Assert the invariants any serving run must hold. Drain-balance is
 *  a hard failure: a leaked byte account fails the test immediately. */
void checkServingInvariants(const serve::Result &result,
                            const serve::Config &config);

/** Assert two runs are bit-identical (scheduling, timing, lifecycle). */
void expectIdenticalRuns(const serve::Result &a, const serve::Result &b);

/**
 * Assert two runtime-backed runs over the same workload decoded
 * byte-identical greedy token streams for every finished request —
 * the caching-changes-timing-never-tokens property. The runs may
 * differ in timing and counters; the requests must pairwise agree on
 * terminal state and token content.
 */
void expectIdenticalDecodes(const serve::RuntimeBackend &backendA,
                            const serve::Result &a,
                            const serve::RuntimeBackend &backendB,
                            const serve::Result &b);

/** Assert two recorded traces render to byte-identical JSON — the
 *  trace-level determinism property for shared-clock engine fleets. */
void expectIdenticalTraces(const obs::ChromeTraceWriter &a,
                           const obs::ChromeTraceWriter &b);

} // namespace test
} // namespace lia

#endif // LIA_TESTS_SUPPORT_SERVING_CHECKS_HH
