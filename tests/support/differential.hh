/**
 * @file
 * Differential-testing harness: analytical-only vs runtime-backed
 * serving runs.
 *
 * Each scenario serves one randomized request stream twice through the
 * same ServingEngine — once purely analytically, once with a
 * serve::RuntimeBackend executing every committed iteration plan on
 * the functional runtime — and asserts:
 *
 *  - identical scheduling decisions, timings, and metrics (the backend
 *    must be passive);
 *  - engine and runtime KV byte accounting in lockstep (the backend
 *    LIA_ASSERTs per-iteration equality internally; the harness checks
 *    the drained account and the executed-work counters);
 *  - token continuity: greedy outputs of preempted requests are
 *    bit-identical to an uninterrupted single-sequence generation;
 *  - no KV leaks at drain.
 *
 * Scenarios run a miniature OPT model (microsecond forwards) over
 * byte budgets small enough that preemption, both victim exits, and
 * chunked prefill all genuinely occur. The scenario count follows
 * LIA_DIFFERENTIAL_SCENARIOS (nightly CI raises it).
 */

#ifndef LIA_TESTS_SUPPORT_DIFFERENTIAL_HH
#define LIA_TESTS_SUPPORT_DIFFERENTIAL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <random>

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/cost_cache.hh"
#include "serve/engine.hh"

namespace lia {
namespace test {

/** Machinery exercised across a differential sweep. */
struct DifferentialOutcome
{
    std::size_t scenarios = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t recomputes = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t prefillChunks = 0;
    std::uint64_t rejectedCapacity = 0;
    std::uint64_t prefixHits = 0;
    std::uint64_t prefixInserts = 0;
    std::uint64_t prefixReclaims = 0;  //!< node evictions + demotions

    // --- Speculative decoding -----------------------------------------
    std::uint64_t specSteps = 0;      //!< draft+verify rounds executed
    std::uint64_t specDrafted = 0;    //!< draft tokens proposed
    std::uint64_t specAccepted = 0;   //!< drafts the verify kept
    /** Finished requests that both speculated and were preempted
     *  (evicted or swapped) mid-stream — the draft-cache rebuild path. */
    std::size_t specPreemptedRequests = 0;

    /** Finished requests whose greedy outputs were compared against an
     *  uninterrupted reference generation... */
    std::size_t continuityChecked = 0;
    /** ...of which this many had actually been preempted. */
    std::size_t preemptedContinuityChecked = 0;
};

/** The differential deployment (tiny CPU/GPU/CXL system). */
const hw::SystemConfig &tinySystem(bool cxl);

/** The served miniature model (shared by engine and runtime). */
const model::ModelConfig &tinyServedModel();

/** Shared calibrated cost cache over (tinySystem, tinyServedModel). */
std::shared_ptr<const serve::IterationCostCache>
tinySharedCosts(bool cxl);

/** Scenario count from @p env_name, or @p fallback when unset. */
std::size_t envScenarioCount(const char *env_name, std::size_t fallback);

/**
 * Draw one randomized serving config sized for the tiny model.
 * @p decode_step_seconds (the cost model's price of a small decode
 * iteration) scales the arrival rate so queueing pressure — and with
 * it preemption — is independent of the analytic model's absolute
 * times.
 */
serve::Config randomTinyConfig(std::mt19937_64 &rng,
                               double decodeStepSeconds);

/**
 * Run @p config through both paths and assert the differential
 * properties; accumulates exercised machinery into @p outcome.
 */
void runDifferentialScenario(const serve::Config &config, bool cxl,
                             DifferentialOutcome &outcome);

} // namespace test
} // namespace lia

#endif // LIA_TESTS_SUPPORT_DIFFERENTIAL_HH
