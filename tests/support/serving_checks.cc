#include "support/serving_checks.hh"

#include <gtest/gtest.h>

namespace lia {
namespace test {

using serve::RequestState;
using serve::SchedulerPolicy;

void
checkServingInvariants(const serve::Result &result,
                       const serve::Config &config)
{
    const auto &mx = result.metrics;

    // --- Budget: reservations never exceeded it ----------------------
    EXPECT_LE(mx.kvReservedPeakBytes,
              result.kvBudgetBytes * (1.0 + 1e-12));
    if (mx.kvOccupancy.count() > 0) {
        EXPECT_LE(mx.kvOccupancy.max(), 1.0 + 1e-12);
    }
    if (config.kvBudgetCapBytes > 0) {
        EXPECT_LE(result.kvBudgetBytes, config.kvBudgetCapBytes);
    }

    // --- Drain: the byte account balances to zero. A leak here means
    // a reservation outlived its request — hard failure. -------------
    ASSERT_NEAR(result.kvReservedAtDrain, 0.0, 0.5)
        << "KV bytes still reserved after the run drained";
    EXPECT_EQ(mx.swapIns, mx.swapOuts);  // every swap-out came back

    // --- Termination: everyone completes or is shed ------------------
    EXPECT_EQ(mx.completed + mx.rejected(), result.requests.size());
    for (const auto &request : result.requests) {
        if (request.state == RequestState::Finished) {
            EXPECT_EQ(request.generated, request.lOut);
            EXPECT_EQ(request.prefilled, request.prefillTarget);
            EXPECT_DOUBLE_EQ(request.kvReservedBytes, 0.0);
            EXPECT_DOUBLE_EQ(request.kvSwappedBytes, 0.0);
            EXPECT_LE(request.arrival, request.admitTime);
            EXPECT_LE(request.admitTime, request.firstTokenTime);
            EXPECT_LE(request.firstTokenTime, request.finishTime);
            EXPECT_EQ(request.preemptions,
                      request.recomputes + request.swapOuts);
        } else {
            // Rejection happens strictly before admission, so a
            // preempted request can never be shed mid-flight.
            ASSERT_EQ(request.state, RequestState::Rejected);
            EXPECT_LT(request.admitTime, 0.0);
            EXPECT_EQ(request.preemptions, 0);
        }
    }

    // --- Policy restrictions -----------------------------------------
    if (config.policy != SchedulerPolicy::Preemptive) {
        EXPECT_EQ(mx.preemptions, 0u);
        EXPECT_EQ(mx.swapOuts, 0u);
        EXPECT_EQ(mx.recomputes, 0u);
    }
    EXPECT_EQ(mx.preemptions, mx.swapOuts + mx.recomputes);
}

void
expectIdenticalRuns(const serve::Result &a, const serve::Result &b)
{
    ASSERT_EQ(a.requests.size(), b.requests.size());
    EXPECT_EQ(a.metrics.completed, b.metrics.completed);
    EXPECT_EQ(a.metrics.iterations, b.metrics.iterations);
    EXPECT_EQ(a.metrics.tokensGenerated, b.metrics.tokensGenerated);
    EXPECT_EQ(a.metrics.preemptions, b.metrics.preemptions);
    EXPECT_EQ(a.metrics.swapOuts, b.metrics.swapOuts);
    EXPECT_EQ(a.metrics.recomputes, b.metrics.recomputes);
    EXPECT_EQ(a.metrics.prefillChunks, b.metrics.prefillChunks);
    EXPECT_EQ(a.metrics.prefixLookups, b.metrics.prefixLookups);
    EXPECT_EQ(a.metrics.prefixHits, b.metrics.prefixHits);
    EXPECT_EQ(a.metrics.prefixHitTokens, b.metrics.prefixHitTokens);
    EXPECT_EQ(a.metrics.prefixInsertedTokens,
              b.metrics.prefixInsertedTokens);
    EXPECT_EQ(a.metrics.prefixEvictedTokens,
              b.metrics.prefixEvictedTokens);
    EXPECT_EQ(a.metrics.prefixDemotedTokens,
              b.metrics.prefixDemotedTokens);
    EXPECT_EQ(a.metrics.prefixCxlReadBytes,
              b.metrics.prefixCxlReadBytes);
    EXPECT_EQ(a.metrics.prefixCachePeakBytes,
              b.metrics.prefixCachePeakBytes);
    EXPECT_EQ(a.prefixCacheBytesAtDrain, b.prefixCacheBytesAtDrain);
    EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
    EXPECT_EQ(a.metrics.busyTime, b.metrics.busyTime);
    EXPECT_EQ(a.metrics.swapBusyTime, b.metrics.swapBusyTime);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        const auto &ra = a.requests[i];
        const auto &rb = b.requests[i];
        EXPECT_EQ(ra.state, rb.state);
        EXPECT_EQ(ra.generated, rb.generated);
        EXPECT_EQ(ra.preemptions, rb.preemptions);
        EXPECT_EQ(ra.recomputes, rb.recomputes);
        EXPECT_EQ(ra.swapOuts, rb.swapOuts);
        EXPECT_EQ(ra.admitTime, rb.admitTime);
        EXPECT_EQ(ra.firstTokenTime, rb.firstTokenTime);
        EXPECT_EQ(ra.finishTime, rb.finishTime);
    }
}

void
expectIdenticalDecodes(const serve::RuntimeBackend &backendA,
                       const serve::Result &a,
                       const serve::RuntimeBackend &backendB,
                       const serve::Result &b)
{
    ASSERT_EQ(a.requests.size(), b.requests.size());
    std::size_t compared = 0;
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        const auto &ra = a.requests[i];
        const auto &rb = b.requests[i];
        ASSERT_EQ(ra.state, rb.state)
            << "request " << i << " reached different terminal states";
        if (ra.state != RequestState::Finished)
            continue;
        EXPECT_EQ(backendA.outputs(ra.id), backendB.outputs(rb.id))
            << "request " << i << " decoded different tokens";
        ++compared;
    }
    EXPECT_GT(compared, 0u) << "no finished requests to compare";
}

void
expectIdenticalTraces(const obs::ChromeTraceWriter &a,
                      const obs::ChromeTraceWriter &b)
{
    ASSERT_EQ(a.events().size(), b.events().size());
    // Byte equality of the rendered documents subsumes event-level
    // equality; the size check above just localises a mismatch.
    EXPECT_EQ(a.toJson(), b.toJson());
}

} // namespace test
} // namespace lia
