/**
 * @file
 * Tests for the cost-efficiency model (§7.8, §8).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "energy/economics.hh"
#include "hw/system.hh"

namespace {

using namespace lia;
using namespace lia::energy;

TEST(EconomicsTest, CapitalAmortisesOverThreeYears)
{
    EconomicsModel econ;
    const auto dgx = hw::dgxA100();
    EXPECT_NEAR(econ.capitalPerHour(dgx),
                200'000.0 / (3 * 365 * 24), 1e-6);
}

TEST(EconomicsTest, ElectricityAtTenCentsPerKwh)
{
    EconomicsModel econ;
    EXPECT_NEAR(econ.electricityPerHour(1000.0), 0.10, 1e-9);
}

TEST(EconomicsTest, CostPerMillionTokensInverseInThroughput)
{
    EconomicsModel econ;
    const auto sys = hw::gnrA100();
    const double slow = econ.costPerMillionTokens(sys, 10.0, 500);
    const double fast = econ.costPerMillionTokens(sys, 20.0, 500);
    EXPECT_NEAR(slow / fast, 2.0, 1e-9);
}

TEST(EconomicsTest, GnrSystemAnOrderOfMagnitudeCheaperThanDgx)
{
    // §7.8: LIA needs only ~10% of the DGX's system cost.
    EXPECT_NEAR(hw::gnrA100().systemCost / hw::dgxA100().systemCost,
                0.11, 0.03);
}

TEST(EconomicsTest, CxlBlendHalvesMemoryCost)
{
    // §8: a 560 GB memory system drops from ~$6,300 (DDR only) to
    // ~$3,200 with half the bytes on repurposed-DDR4 CXL.
    EconomicsModel econ;
    const auto sys = hw::withCxl(hw::sprA100());
    const double bytes = 560e9;
    const double ddr_only = econ.memorySystemCost(sys, bytes, 0.0);
    const double blended = econ.memorySystemCost(sys, bytes, 0.5);
    EXPECT_NEAR(ddr_only, 6'300, 300);
    EXPECT_NEAR(blended, 3'200, 400);
}

TEST(EconomicsTest, NoCxlPoolPricesAtDdrRate)
{
    EconomicsModel econ;
    const auto sys = hw::sprA100();
    EXPECT_NEAR(econ.memorySystemCost(sys, 100e9, 0.5),
                econ.memorySystemCost(sys, 100e9, 0.0), 1e-9);
}

TEST(EconomicsTest, RejectsBadParameters)
{
    detail::setThrowOnError(true);
    EconomicsConfig bad;
    bad.amortizationYears = 0;
    EXPECT_THROW(EconomicsModel{bad}, std::logic_error);
    EconomicsModel econ;
    EXPECT_THROW(econ.costPerMillionTokens(hw::sprA100(), 0.0, 100),
                 std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
