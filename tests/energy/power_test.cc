/**
 * @file
 * Tests for the power/energy model (§7.5 shapes).
 */

#include <gtest/gtest.h>

#include "baselines/presets.hh"
#include "energy/power.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::energy;
using core::Scenario;

class PowerTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt30b();
    PowerModel power{sys};
};

TEST_F(PowerTest, EnergyComponentsPositive)
{
    const auto est = baselines::liaEngine(sys, m).estimate({1, 256, 32});
    const auto report = power.energy(est);
    EXPECT_GT(report.staticJoules, 0);
    EXPECT_GE(report.cpuJoules, 0);
    EXPECT_GE(report.gpuJoules, 0);
    EXPECT_NEAR(report.totalJoules(),
                report.staticJoules + report.cpuJoules +
                    report.gpuJoules,
                1e-9);
}

TEST_F(PowerTest, AveragePowerWithinPlatformEnvelope)
{
    const auto est = baselines::liaEngine(sys, m).estimate({64, 256, 32});
    const double watts = power.averagePower(est);
    EXPECT_GT(watts, sys.staticPower);
    EXPECT_LT(watts, sys.staticPower + sys.cpu.tdp + sys.gpu.tdp + 1);
}

TEST_F(PowerTest, LiaMoreEfficientThanBaselines)
{
    // Fig. 12: LIA's energy/token beats IPEX (1.1-5.8x) and FlexGen
    // (1.6-10.3x).
    const Scenario sc{1, 512, 32};
    const auto lia = baselines::liaEngine(sys, m).estimate(sc);
    const auto ipex = baselines::ipexEngine(sys, m).estimate(sc);
    const auto flexgen = baselines::FlexGenModel(sys, m).estimate(sc);
    const double e_lia = power.energyPerToken(lia, sc);
    EXPECT_GT(power.energyPerToken(ipex, sc) / e_lia, 1.05);
    EXPECT_GT(power.energyPerToken(flexgen, sc) / e_lia, 1.5);
}

TEST_F(PowerTest, IdleTransferTimeBurnsStaticPowerOnly)
{
    // A transfer-dominated run has low dynamic energy share.
    auto naive = baselines::naiveOffloadEngine(sys, model::opt175b(),
                                               true);
    const auto est = naive.estimate({1, 512, 32});
    const auto report = power.energy(est);
    EXPECT_GT(report.staticJoules,
              report.cpuJoules + report.gpuJoules);
}

TEST_F(PowerTest, CpuOnlyRunHasNoGpuDynamicEnergy)
{
    const auto est = baselines::ipexEngine(sys, m).estimate({8, 256, 32});
    const auto report = power.energy(est);
    EXPECT_DOUBLE_EQ(report.gpuJoules, 0.0);
    EXPECT_GT(report.cpuJoules, 0.0);
}

TEST_F(PowerTest, EnergyPerTokenDividesByGeneratedTokens)
{
    const Scenario sc{4, 256, 32};
    const auto est = baselines::liaEngine(sys, m).estimate(sc);
    EXPECT_NEAR(power.energyPerToken(est, sc),
                power.energy(est).totalJoules() / (4.0 * 32.0), 1e-9);
}

} // namespace
