/**
 * @file
 * Tests for the LIA/IPEX/FlexGen engine presets and the paper's
 * headline comparisons (Figs. 10 and 11 shapes).
 */

#include <gtest/gtest.h>

#include "baselines/presets.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Policy;
using core::Scenario;

class PresetsTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m30 = model::opt30b();
    model::ModelConfig m175 = model::opt175b();
};

TEST_F(PresetsTest, LiaBeatsIpexAndFlexGenOnline)
{
    // Fig. 10 (SPR-A100, B=1): LIA is 1.8-2.1x faster than IPEX and
    // 5.3-7.3x faster than FlexGen on OPT-30B.
    const Scenario sc{1, 512, 32};
    const double lia = liaEngine(sys, m30).estimate(sc).latency();
    const double ipex = ipexEngine(sys, m30).estimate(sc).latency();
    const double flexgen = FlexGenModel(sys, m30).estimate(sc).latency();
    EXPECT_GT(ipex / lia, 1.2);
    EXPECT_LT(ipex / lia, 3.5);
    EXPECT_GT(flexgen / lia, 3.0);
    EXPECT_LT(flexgen / lia, 14.0);
}

TEST_F(PresetsTest, LiaBeatsBaselinesOnline175b)
{
    // Fig. 10: 1.1-1.3x over IPEX and 8.5-12x over FlexGen for
    // OPT-175B on SPR-A100.
    const Scenario sc{1, 512, 32};
    const double lia = liaEngine(sys, m175).estimate(sc).latency();
    const double ipex = ipexEngine(sys, m175).estimate(sc).latency();
    const double flexgen =
        FlexGenModel(sys, m175).estimate(sc).latency();
    EXPECT_GT(ipex / lia, 1.0);
    EXPECT_LT(ipex / lia, 2.0);
    EXPECT_GT(flexgen / lia, 4.0);
    EXPECT_LT(flexgen / lia, 25.0);
}

TEST_F(PresetsTest, LiaGapOverIpexShrinksWithModelSize)
{
    // Fig. 10: fewer decoder layers fit the GPU for bigger models, so
    // LIA's edge over CPU-only IPEX narrows from OPT-30B to OPT-175B.
    const Scenario sc{1, 512, 32};
    const double gain30 =
        ipexEngine(sys, m30).estimate(sc).latency() /
        liaEngine(sys, m30).estimate(sc).latency();
    const double gain175 =
        ipexEngine(sys, m175).estimate(sc).latency() /
        liaEngine(sys, m175).estimate(sc).latency();
    EXPECT_GT(gain30, gain175);
}

TEST_F(PresetsTest, LiaBeatsBaselinesOffline)
{
    // Fig. 11: LIA delivers higher tokens/s at both B=64 and B=900.
    for (std::int64_t b : {64, 900}) {
        const Scenario sc{b, 256, 32};
        const auto lia = liaEngine(sys, m30).estimate(sc);
        const auto ipex = ipexEngine(sys, m30).estimate(sc);
        const auto flexgen = FlexGenModel(sys, m30).estimate(sc);
        EXPECT_GT(lia.throughput(sc), ipex.throughput(sc)) << b;
        EXPECT_GT(lia.throughput(sc), flexgen.throughput(sc)) << b;
    }
}

TEST_F(PresetsTest, H100ImprovesLiaOver175b)
{
    // §7.2: LIA on SPR-H100 is 1.1-1.3x faster than on SPR-A100.
    const Scenario sc{1, 512, 32};
    const double a100 = liaEngine(sys, m175).estimate(sc).latency();
    const double h100 =
        liaEngine(hw::sprH100(), m175).estimate(sc).latency();
    EXPECT_GT(a100 / h100, 1.0);
    EXPECT_LT(a100 / h100, 2.0);
}

TEST_F(PresetsTest, FlexGenKeepsKvOnGpuOnlyWhenItFits)
{
    FlexGenModel fg(sys, m30);
    EXPECT_TRUE(fg.kvFitsGpu({1, 512, 32}));
    EXPECT_FALSE(fg.kvFitsGpu({64, 1024, 32}));
}

TEST_F(PresetsTest, FlexGenPoliciesMatchItsDesign)
{
    FlexGenModel fg(sys, m30);
    // Small batch: everything on GPU with HBM-resident KV.
    const auto small = fg.estimate({1, 512, 32});
    EXPECT_EQ(small.decodePolicy, Policy::fullGpu());
    // Large batch: attention compute-offloaded.
    const auto large = fg.estimate({64, 1024, 32});
    EXPECT_EQ(large.decodePolicy, Policy::attentionOnCpu());
    EXPECT_EQ(large.prefillPolicy, Policy::fullGpu());
}

TEST_F(PresetsTest, IpexIsCpuOnly)
{
    const auto est = ipexEngine(sys, m30).estimate({8, 256, 32});
    EXPECT_DOUBLE_EQ(est.pcieBytes, 0.0);
    EXPECT_DOUBLE_EQ(est.breakdown.gpuTime, 0.0);
}

TEST_F(PresetsTest, NaiveOffloadIsTransferBound)
{
    // §3.1: >80-98% of naive offloading latency is CPU-GPU transfer.
    auto naive = naiveOffloadEngine(sys, m175, true);
    const auto est = naive.estimate({1, 512, 32});
    const double total = est.breakdown.cpuTime +
                         est.breakdown.gpuTime +
                         est.breakdown.comTime;
    EXPECT_GT(est.breakdown.comTime / total, 0.8);
}

TEST_F(PresetsTest, LiaWithCxlKeepsThroughputWithinOnePercent)
{
    // Table 3: CXL offloading costs <1% throughput at the same B.
    const Scenario sc{900, 32, 32};
    const auto plain = liaEngine(sys, m30).estimate(sc);
    const auto cxl =
        liaEngine(hw::withCxl(sys), m30).estimate(sc);
    EXPECT_NEAR(cxl.throughput(sc) / plain.throughput(sc), 1.0, 0.02);
    EXPECT_GT(cxl.placement.cxlBytes, 0.0);
}

TEST_F(PresetsTest, AblationOrderingMatchesTable4)
{
    // All-optimizations is the fastest configuration everywhere.
    for (std::int64_t b : {1, 64, 900}) {
        const Scenario sc{b, 256, 32};
        const double full =
            liaEngineAblated(sys, m30, true, true, true)
                .estimate(sc).latency();
        for (int drop = 0; drop < 3; ++drop) {
            const double ablated =
                liaEngineAblated(sys, m30, drop != 0, drop != 1,
                                 drop != 2)
                    .estimate(sc).latency();
            EXPECT_GE(ablated, full * 0.999)
                << "B=" << b << " drop=" << drop;
        }
    }
}

} // namespace
