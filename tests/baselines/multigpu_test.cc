/**
 * @file
 * Tests for the tensor-parallel multi-GPU baseline (§7.8, §8).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "baselines/multigpu.hh"
#include "baselines/presets.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

class MultiGpuTest : public ::testing::Test
{
  protected:
    hw::SystemConfig dgx = hw::dgxA100();
    model::ModelConfig m = model::opt175b();
};

TEST_F(MultiGpuTest, SmallAndMediumBatchesFeasible)
{
    TensorParallelModel tp(dgx, m);
    EXPECT_TRUE(tp.estimate({1, 512, 32}).feasible);
    EXPECT_TRUE(tp.estimate({64, 512, 32}).feasible);
}

TEST_F(MultiGpuTest, BatchNineHundredOom)
{
    // Fig. 14: the B=900 column is OOM on the DGX.
    TensorParallelModel tp(dgx, m);
    const auto est = tp.estimate({900, 1024, 32});
    EXPECT_FALSE(est.feasible);
}

TEST_F(MultiGpuTest, LiaBatchesBeyondTheDgxCeiling)
{
    // Fig. 14's B=900 column: the DGX is OOM while LIA keeps scaling
    // throughput with batch size on one tenth of the hardware cost.
    TensorParallelModel tp(dgx, model::opt30b());
    const Scenario big{900, 256, 32};
    EXPECT_FALSE(tp.estimate({900, 1024, 32}).feasible);
    auto lia = liaEngine(hw::gnrA100(), model::opt30b());
    const auto at_64 = lia.estimate({64, 256, 32});
    const auto at_900 = lia.estimate(big);
    ASSERT_TRUE(at_900.feasible);
    EXPECT_GT(at_900.throughput(big),
              at_64.throughput({64, 256, 32}));
}

TEST_F(MultiGpuTest, DgxWinsPerGpuThroughputAtBatch64)
{
    // Fig. 14: at B=64 the DGX is ~30% ahead per GPU.
    const Scenario sc{64, 512, 32};
    TensorParallelModel tp(dgx, m);
    const auto lia_est = liaEngine(hw::gnrA100(), m).estimate(sc);
    EXPECT_GT(tp.perGpuThroughput(sc), lia_est.throughput(sc));
}

TEST_F(MultiGpuTest, ThroughputScalesSublinearlyWithAllReduce)
{
    // TP compute divides by 8 but the all-reduce does not: decode
    // speedup over a single GPU stays below 8x.
    TensorParallelModel tp(dgx, m);
    hw::SystemConfig one_gpu = dgx;
    one_gpu.gpuCount = 1;
    // Single-GPU 80 GB cannot hold OPT-175B, so compare layer-level
    // proxies instead: TP latency must exceed 1/8 of nothing... use
    // the fabric-latency sensitivity instead: slower fabric -> slower.
    hw::SystemConfig slow = dgx;
    slow.gpuFabric->bandwidth /= 10.0;
    TensorParallelModel tp_slow(slow, m);
    const Scenario sc{64, 512, 32};
    EXPECT_GT(tp_slow.estimate(sc).latency(),
              tp.estimate(sc).latency());
}

TEST_F(MultiGpuTest, CheapV100OffloadingClusterLosesToLia)
{
    // §8: data-offloading OPT-175B over 3 pooled V100s with a weak
    // CPU underperforms LIA on the similarly-priced GNR-A100 by
    // 6.3-11x in latency, even ignoring inter-V100 communication.
    const auto pooled = hw::cheapV100x3Pooled();
    const Scenario sc{1, 512, 32};
    const double lia =
        liaEngine(hw::gnrA100(), m).estimate(sc).latency();
    const double cheap =
        FlexGenModel(pooled, m).estimate(sc).latency();
    EXPECT_GT(cheap / lia, 2.0);
    EXPECT_LT(cheap / lia, 20.0);
}

TEST_F(MultiGpuTest, SingleGpuSystemRejected)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(TensorParallelModel(hw::sprA100(), m),
                 std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
