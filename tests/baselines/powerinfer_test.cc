/**
 * @file
 * Tests for the PowerInfer baseline model (§7.9 comparison).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "baselines/powerinfer.hh"
#include "baselines/presets.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

class PowerInferTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::gnrA100();
    model::ModelConfig m = model::llama2_70b();
};

TEST_F(PowerInferTest, LiaFasterOnline)
{
    // Fig. 15: LIA achieves 1.4-9.0x lower latency on Llama2-70B.
    const Scenario sc{1, 512, 32};
    const double lia = liaEngine(sys, m).estimate(sc).latency();
    const double pi = PowerInferModel(sys, m).estimate(sc).latency();
    EXPECT_GT(pi / lia, 1.2);
    EXPECT_LT(pi / lia, 15.0);
}

TEST_F(PowerInferTest, LiaHigherThroughputOffline)
{
    // Fig. 15: 1.5-15x higher throughput at B=64.
    const Scenario sc{64, 256, 32};
    const auto lia = liaEngine(sys, m).estimate(sc);
    const auto pi = PowerInferModel(sys, m).estimate(sc);
    EXPECT_GT(lia.throughput(sc) / pi.throughput(sc), 1.3);
}

TEST_F(PowerInferTest, LargeBatchRunsOutOfMemory)
{
    // Fig. 15: PowerInfer hits CUDA OOM at B=900.
    const auto est = PowerInferModel(sys, m).estimate({900, 256, 32});
    EXPECT_FALSE(est.feasible);
    EXPECT_NE(est.note.find("OOM"), std::string::npos);
}

TEST_F(PowerInferTest, SmallBatchIsFeasible)
{
    EXPECT_TRUE(PowerInferModel(sys, m).estimate({1, 512, 32}).feasible);
}

TEST_F(PowerInferTest, SparsityCollapsesWithBatch)
{
    // §7.9: PowerInfer gains little from large batches because the
    // activated-neuron union saturates; per-token decode time should
    // grow far slower for LIA than for PowerInfer going B=1 -> 64.
    PowerInferModel pi(sys, m);
    const auto pi1 = pi.estimate({1, 256, 32});
    const auto pi64 = pi.estimate({64, 256, 32});
    // Per-token time ratio: ideal batching keeps it flat at 1/64.
    const double scaling = pi64.decodeTime / pi1.decodeTime;
    EXPECT_GT(scaling, 3.0);  // far from free batching
}

TEST_F(PowerInferTest, HigherSparsityHelpsDecode)
{
    PowerInferConfig sparse;
    sparse.coldActivationRate = 0.05;
    PowerInferConfig dense;
    dense.coldActivationRate = 0.9;
    const Scenario sc{1, 256, 32};
    const double t_sparse =
        PowerInferModel(sys, m, sparse).estimate(sc).decodeTime;
    const double t_dense =
        PowerInferModel(sys, m, dense).estimate(sc).decodeTime;
    EXPECT_LT(t_sparse, t_dense);
}

TEST_F(PowerInferTest, RejectsBadConfig)
{
    detail::setThrowOnError(true);
    PowerInferConfig bad;
    bad.coldActivationRate = 0.0;
    EXPECT_THROW(PowerInferModel(sys, m, bad), std::logic_error);
    bad = PowerInferConfig{};
    bad.hotFractionTarget = 1.5;
    EXPECT_THROW(PowerInferModel(sys, m, bad), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
