/**
 * @file
 * Unit tests for the logging/error-reporting utilities.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"

namespace {

using namespace lia;

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(LoggingTest, PanicThrowsLogicError)
{
    EXPECT_THROW(LIA_PANIC("boom ", 42), std::logic_error);
}

TEST_F(LoggingTest, FatalThrowsRuntimeError)
{
    EXPECT_THROW(LIA_FATAL("bad config"), std::runtime_error);
}

TEST_F(LoggingTest, PanicMessageCarriesPartsAndLocation)
{
    try {
        LIA_PANIC("value=", 7, " name=", "x");
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("value=7 name=x"), std::string::npos);
        EXPECT_NE(what.find("logging_test.cc"), std::string::npos);
    }
}

TEST_F(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(LIA_ASSERT(1 + 1 == 2, "math works"));
}

TEST_F(LoggingTest, AssertPanicsOnFalseCondition)
{
    EXPECT_THROW(LIA_ASSERT(false, "nope"), std::logic_error);
}

TEST_F(LoggingTest, AssertMessageNamesCondition)
{
    try {
        LIA_ASSERT(2 < 1, "ordering");
        FAIL() << "assert did not throw";
    } catch (const std::logic_error &err) {
        EXPECT_NE(std::string(err.what()).find("2 < 1"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(LIA_WARN("just a warning ", 1));
    EXPECT_NO_THROW(LIA_INFORM("status ", 2));
}

} // namespace
