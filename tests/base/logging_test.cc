/**
 * @file
 * Unit tests for the logging/error-reporting utilities.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"

namespace {

using namespace lia;

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(LoggingTest, PanicThrowsLogicError)
{
    EXPECT_THROW(LIA_PANIC("boom ", 42), std::logic_error);
}

TEST_F(LoggingTest, FatalThrowsRuntimeError)
{
    EXPECT_THROW(LIA_FATAL("bad config"), std::runtime_error);
}

TEST_F(LoggingTest, PanicMessageCarriesPartsAndLocation)
{
    try {
        LIA_PANIC("value=", 7, " name=", "x");
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("value=7 name=x"), std::string::npos);
        EXPECT_NE(what.find("logging_test.cc"), std::string::npos);
    }
}

TEST_F(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(LIA_ASSERT(1 + 1 == 2, "math works"));
}

TEST_F(LoggingTest, AssertPanicsOnFalseCondition)
{
    EXPECT_THROW(LIA_ASSERT(false, "nope"), std::logic_error);
}

TEST_F(LoggingTest, AssertMessageNamesCondition)
{
    try {
        LIA_ASSERT(2 < 1, "ordering");
        FAIL() << "assert did not throw";
    } catch (const std::logic_error &err) {
        EXPECT_NE(std::string(err.what()).find("2 < 1"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(LIA_WARN("just a warning ", 1));
    EXPECT_NO_THROW(LIA_INFORM("status ", 2));
}

/**
 * Captures log output into a stringstream and restores the default
 * logging configuration afterwards, so the level-filtering tests
 * cannot leak state into each other (or into other suites).
 */
class LogFilterTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogStream(&captured_); }

    void TearDown() override
    {
        setLogStream(nullptr);
        setLogLevel(LogLevel::Normal);
        setWallTimePrefix(false);
        setSimTimePrefix(false);
        setSimTimeProvider({});
    }

    std::string text() const { return captured_.str(); }

    std::ostringstream captured_;
};

TEST_F(LogFilterTest, NormalShowsInformSuppressesVerbose)
{
    setLogLevel(LogLevel::Normal);
    LIA_INFORM("status line");
    LIA_VERBOSE("detail line");
    EXPECT_NE(text().find("info: status line"), std::string::npos);
    EXPECT_EQ(text().find("detail line"), std::string::npos);
}

TEST_F(LogFilterTest, QuietSilencesInformButNeverWarn)
{
    setLogLevel(LogLevel::Quiet);
    LIA_INFORM("chatter");
    LIA_VERBOSE("more chatter");
    LIA_WARN("still important");
    EXPECT_EQ(text().find("chatter"), std::string::npos);
    EXPECT_NE(text().find("warn: still important"), std::string::npos);
}

TEST_F(LogFilterTest, VerboseShowsEverything)
{
    setLogLevel(LogLevel::Verbose);
    LIA_INFORM("status line");
    LIA_VERBOSE("detail line");
    EXPECT_NE(text().find("info: status line"), std::string::npos);
    EXPECT_NE(text().find("verbose: detail line"), std::string::npos);
}

TEST_F(LogFilterTest, VerboseMacroSkipsFormattingWhenDisabled)
{
    setLogLevel(LogLevel::Normal);
    int evaluations = 0;
    auto count = [&evaluations] { return ++evaluations; };
    LIA_VERBOSE("computed ", count());
    EXPECT_EQ(evaluations, 0);
    setLogLevel(LogLevel::Verbose);
    LIA_VERBOSE("computed ", count());
    EXPECT_EQ(evaluations, 1);
}

TEST_F(LogFilterTest, SimTimePrefixUsesInstalledProvider)
{
    setSimTimePrefix(true);
    LIA_INFORM("no provider yet");
    EXPECT_EQ(text().find("[sim"), std::string::npos);

    setSimTimeProvider([] { return 0.125; });
    LIA_INFORM("with provider");
    EXPECT_NE(text().find("[sim 0.125000s] info: with provider"),
              std::string::npos);
}

TEST_F(LogFilterTest, WallTimePrefixAppears)
{
    setWallTimePrefix(true);
    LIA_INFORM("stamped");
    EXPECT_NE(text().find("[wall "), std::string::npos);
    EXPECT_NE(text().find("s] info: stamped"), std::string::npos);
}

} // namespace
