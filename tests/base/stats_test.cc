/**
 * @file
 * Unit tests for summary statistics.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"

namespace {

using namespace lia;

TEST(SampleStatsTest, BasicMoments)
{
    SampleStats s;
    s.add({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.stddev(), 1.1180, 1e-3);
}

TEST(SampleStatsTest, PercentileInterpolates)
{
    SampleStats s;
    s.add({10.0, 20.0, 30.0, 40.0, 50.0});
    EXPECT_DOUBLE_EQ(s.p50(), 30.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
    EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);
}

TEST(SampleStatsTest, SingleSampleIsEveryPercentile)
{
    SampleStats s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.p50(), 7.0);
    EXPECT_DOUBLE_EQ(s.p99(), 7.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStatsTest, UnsortedInsertOrderIrrelevant)
{
    SampleStats a, b;
    a.add({5.0, 1.0, 3.0});
    b.add({1.0, 3.0, 5.0});
    EXPECT_DOUBLE_EQ(a.p50(), b.p50());
    EXPECT_DOUBLE_EQ(a.percentile(75), b.percentile(75));
}

TEST(SampleStatsTest, QueriesThenMoreSamples)
{
    SampleStats s;
    s.add({2.0, 1.0});
    EXPECT_DOUBLE_EQ(s.p50(), 1.5);
    s.add(0.0);  // re-sorts lazily
    EXPECT_DOUBLE_EQ(s.p50(), 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(SampleStatsTest, UniformSamplesMatchTheory)
{
    Rng rng(9);
    SampleStats s;
    for (int i = 0; i < 50'000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.p50(), 0.5, 0.01);
    EXPECT_NEAR(s.p95(), 0.95, 0.01);
    EXPECT_NEAR(s.stddev(), 0.2887, 0.01);
}

TEST(SampleStatsTest, EmptyQueriesPanic)
{
    detail::setThrowOnError(true);
    SampleStats s;
    EXPECT_THROW(s.mean(), std::logic_error);
    EXPECT_THROW(s.p50(), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(SampleStatsTest, OutOfRangePercentilePanics)
{
    detail::setThrowOnError(true);
    SampleStats s;
    s.add(1.0);
    EXPECT_THROW(s.percentile(101.0), std::logic_error);
    EXPECT_THROW(s.percentile(-1.0), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
