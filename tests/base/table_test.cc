/**
 * @file
 * Unit tests for the table formatter and numeric formatting helpers.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "base/table.hh"

namespace {

using namespace lia;

TEST(TextTableTest, RendersHeadersAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTableTest, RowCountCountsDataRows)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    EXPECT_EQ(t.rowCount(), 3u);
}

TEST(TextTableTest, ColumnsAlignToWidestCell)
{
    TextTable t({"c"});
    t.addRow({"short"});
    t.addRow({"a-much-longer-cell"});
    const std::string out = t.toString();
    // Every line has the same length in an aligned table.
    std::size_t expected = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t next = out.find('\n', pos);
        EXPECT_EQ(next - pos, expected);
        pos = next + 1;
    }
}

TEST(TextTableTest, MismatchedRowWidthPanics)
{
    detail::setThrowOnError(true);
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(FormatTest, FmtDoubleRespectsDecimals)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(3.14159, 0), "3");
}

TEST(FormatTest, FmtSecondsPicksUnit)
{
    EXPECT_EQ(fmtSeconds(2.5), "2.50 s");
    EXPECT_EQ(fmtSeconds(0.0025), "2.50 ms");
    EXPECT_EQ(fmtSeconds(2.5e-6), "2.50 us");
}

TEST(FormatTest, FmtBytesPicksUnit)
{
    EXPECT_EQ(fmtBytes(512), "512 B");
    EXPECT_EQ(fmtBytes(2'000), "2.00 KB");
    EXPECT_EQ(fmtBytes(3.5e9), "3.50 GB");
    EXPECT_EQ(fmtBytes(1.2e12), "1.20 TB");
}

TEST(FormatTest, FmtThroughputPicksUnit)
{
    EXPECT_EQ(fmtThroughput(5e9), "5.00 GFLOPS");
    EXPECT_EQ(fmtThroughput(2e13), "20.00 TFLOPS");
}

TEST(FormatTest, FmtRatioAndPercent)
{
    EXPECT_EQ(fmtRatio(2.5), "2.50x");
    EXPECT_EQ(fmtPercent(0.431), "43.1%");
    EXPECT_EQ(fmtPercent(0.5, 0), "50%");
}

} // namespace
