/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/rng.hh"

namespace {

using lia::Rng;

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1'000; ++i) {
        const double u = rng.uniform(-3.0, 5.5);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.5);
    }
}

TEST(RngTest, UniformMeanNearOneHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversInclusiveRange)
{
    Rng rng(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1'000; ++i) {
        const auto v = rng.uniformInt(3, 8);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 8);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntSingleton)
{
    Rng rng(17);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(RngTest, NormalMomentsMatch)
{
    Rng rng(19);
    double sum = 0, sq = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ScaledNormalMoments)
{
    Rng rng(23);
    double sum = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
