/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "base/args.hh"

namespace {

using lia::ArgParser;

ArgParser
parse(std::initializer_list<const char *> argv)
{
    std::vector<const char *> v(argv);
    return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParserTest, KeyValuePairs)
{
    const auto args = parse({"prog", "--system", "SPR-A100",
                             "--batch", "64"});
    EXPECT_EQ(args.getString("system", ""), "SPR-A100");
    EXPECT_EQ(args.getInt("batch", 0), 64);
    EXPECT_EQ(args.program(), "prog");
}

TEST(ArgParserTest, EqualsSyntax)
{
    const auto args = parse({"prog", "--model=OPT-30B", "--slo=2.5"});
    EXPECT_EQ(args.getString("model", ""), "OPT-30B");
    EXPECT_DOUBLE_EQ(args.getDouble("slo", 0), 2.5);
}

TEST(ArgParserTest, BareFlags)
{
    const auto args = parse({"prog", "--verbose", "--cxl"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_TRUE(args.has("cxl"));
    EXPECT_FALSE(args.has("quiet"));
}

TEST(ArgParserTest, FlagFollowedByOption)
{
    const auto args = parse({"prog", "--dry-run", "--batch", "8"});
    EXPECT_TRUE(args.has("dry-run"));
    EXPECT_EQ(args.getString("dry-run", "x"), "");
    EXPECT_EQ(args.getInt("batch", 0), 8);
}

TEST(ArgParserTest, PositionalArguments)
{
    const auto args = parse({"prog", "plan", "--lin", "128", "extra"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "plan");
    EXPECT_EQ(args.positional()[1], "extra");
}

TEST(ArgParserTest, FallbacksWhenAbsent)
{
    const auto args = parse({"prog"});
    EXPECT_EQ(args.getString("missing", "dflt"), "dflt");
    EXPECT_EQ(args.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 1.5), 1.5);
    EXPECT_TRUE(args.positional().empty());
}

TEST(ArgParserTest, LastOccurrenceWins)
{
    const auto args = parse({"prog", "--b", "1", "--b", "2"});
    EXPECT_EQ(args.getInt("b", 0), 2);
}

} // namespace
