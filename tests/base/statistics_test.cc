/**
 * @file
 * Unit tests for the gem5-style statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "base/logging.hh"
#include "base/statistics.hh"

namespace {

using namespace lia;
using namespace lia::stats;

TEST(StatsScalarTest, AccumulatesAndSets)
{
    Group g;
    auto &counter = g.scalar("hits", "cache hits");
    counter += 3;
    ++counter;
    EXPECT_DOUBLE_EQ(counter.value(), 4.0);
    counter.set(10);
    EXPECT_DOUBLE_EQ(counter.value(), 10.0);
}

TEST(StatsFormulaTest, EvaluatesAtDumpTime)
{
    Group g;
    double live = 1.0;
    auto &f = g.formula("ratio", "live value", [&] { return live; });
    EXPECT_DOUBLE_EQ(f.value(), 1.0);
    live = 7.5;
    EXPECT_DOUBLE_EQ(f.value(), 7.5);
}

TEST(StatsVectorTest, BucketsAndTotal)
{
    Group g;
    auto &v = g.vector("traffic", "bytes by class",
                       {"param", "kv", "act"});
    v.add(0, 100);
    v.add(1, 50);
    v.add(0, 25);
    EXPECT_DOUBLE_EQ(v.value(0), 125);
    EXPECT_DOUBLE_EQ(v.value(2), 0);
    EXPECT_DOUBLE_EQ(v.total(), 175);
    EXPECT_EQ(v.size(), 3u);
}

TEST(StatsVectorTest, OutOfRangeBucketPanics)
{
    detail::setThrowOnError(true);
    Group g;
    auto &v = g.vector("v", "", {"a"});
    EXPECT_THROW(v.add(1, 1.0), std::logic_error);
    EXPECT_THROW(v.value(5), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(StatsGroupTest, QualifiesNames)
{
    Group g("lia.exec");
    auto &s = g.scalar("steps", "decode steps");
    EXPECT_EQ(s.name(), "lia.exec.steps");
    EXPECT_NE(g.find("lia.exec.steps"), nullptr);
    EXPECT_EQ(g.find("steps"), nullptr);
}

TEST(StatsGroupTest, DumpFormat)
{
    Group g("sim");
    g.scalar("ticks", "simulated ticks") += 42;
    g.formula("speed", "ticks per second", [] { return 2.5; });
    auto &v = g.vector("lanes", "per-lane counts", {"up", "down"});
    v.add(1, 9);

    std::ostringstream oss;
    g.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("sim.ticks"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("# simulated ticks"), std::string::npos);
    EXPECT_NE(out.find("sim.lanes::down"), std::string::npos);
    EXPECT_NE(out.find("sim.lanes::total"), std::string::npos);
    // One line per scalar/formula, four for the vector buckets+total.
    EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(),
                                          '\n')),
              5);
}

TEST(StatsGroupTest, RegistrationOrderPreserved)
{
    Group g;
    g.scalar("b", "");
    g.scalar("a", "");
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_LT(oss.str().find("b"), oss.str().find("a"));
}

TEST(StatsGroupTest, EmptyNameRejected)
{
    detail::setThrowOnError(true);
    Group g;
    EXPECT_THROW(g.scalar("", "oops"), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
