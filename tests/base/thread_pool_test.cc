/**
 * @file
 * Unit tests for the deterministic parallel-for thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/thread_pool.hh"

namespace {

using lia::base::ThreadPool;

TEST(ThreadPoolTest, DefaultThreadCountIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1);
}

TEST(ThreadPoolTest, ThreadCountMatchesConstructorArgument)
{
    ThreadPool one(1);
    ThreadPool four(4);
    EXPECT_EQ(one.threadCount(), 1);
    EXPECT_EQ(four.threadCount(), 4);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce)
{
    for (const int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        constexpr std::int64_t n = 10007;  // prime: ragged last chunk
        std::vector<std::atomic<int>> visits(n);
        pool.parallelFor(n, 1, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i)
                visits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (std::int64_t i = 0; i < n; ++i)
            ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
                << "index " << i << " at " << threads << " threads";
    }
}

TEST(ThreadPoolTest, ChunksRespectGrainAndCoverRange)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> total{0};
    pool.parallelFor(1000, 64, [&](std::int64_t b, std::int64_t e) {
        // Every chunk but the last must hold at least `grain` items.
        if (e != 1000)
            EXPECT_GE(e - b, 64);
        total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, EmptyAndTinyRangesRunInline)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(3, 8, [&](std::int64_t b, std::int64_t e) {
        // n <= grain executes as one inline chunk on the caller.
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 3);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> inner_items{0};
    pool.parallelFor(16, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            EXPECT_TRUE(ThreadPool::insideWorker());
            pool.parallelFor(8, 1,
                             [&](std::int64_t ib, std::int64_t ie) {
                                 inner_items.fetch_add(ie - ib);
                             });
        }
    });
    EXPECT_EQ(inner_items.load(), 16 * 8);
    EXPECT_FALSE(ThreadPool::insideWorker());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> done{0};
    EXPECT_THROW(
        pool.parallelFor(100, 1,
                         [&](std::int64_t b, std::int64_t e) {
                             if (b == 0)
                                 throw std::runtime_error("chunk fail");
                             done.fetch_add(e - b);
                         }),
        std::runtime_error);
    // The loop drained before rethrowing: no chunk is left running.
    EXPECT_LE(done.load(), 100);
}

TEST(ThreadPoolTest, ManySmallLoopsReuseWorkers)
{
    // Dispatch stress: generations must not tangle across iterations.
    ThreadPool pool(3);
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::int64_t> sum{0};
        pool.parallelFor(64, 1, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i)
                sum.fetch_add(i);
        });
        ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
    }
}

TEST(ThreadPoolTest, ConcurrentExternalCallersSerializeSafely)
{
    // The pool holds a single job slot: two non-worker threads
    // dispatching at once must take turns, not overwrite each other's
    // job (which used to abandon one caller's loop and could strand a
    // waiter forever). Each caller's loop must still visit every
    // index exactly once.
    ThreadPool pool(4);
    constexpr int kCallers = 4;
    constexpr std::int64_t n = 4096;
    std::vector<std::int64_t> sums(kCallers, 0);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
        callers.emplace_back([&pool, &sums, c] {
            for (int round = 0; round < 50; ++round) {
                std::atomic<std::int64_t> sum{0};
                pool.parallelFor(
                    n, 1, [&sum](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i)
                            sum.fetch_add(i,
                                          std::memory_order_relaxed);
                    });
                sums[static_cast<std::size_t>(c)] = sum.load();
            }
        });
    }
    for (std::thread &caller : callers)
        caller.join();
    for (int c = 0; c < kCallers; ++c)
        EXPECT_EQ(sums[static_cast<std::size_t>(c)], n * (n - 1) / 2)
            << "caller " << c;
}

TEST(ThreadPoolTest, PartitionIsDeterministicPerPool)
{
    // Same (n, grain, threadCount) must produce identical chunk
    // boundaries run to run — the determinism contract's scaffolding.
    const auto boundaries = [](ThreadPool &pool) {
        std::vector<std::int64_t> begins;
        std::mutex m;
        pool.parallelFor(777, 5, [&](std::int64_t b, std::int64_t) {
            std::lock_guard<std::mutex> lock(m);
            begins.push_back(b);
        });
        std::sort(begins.begin(), begins.end());
        return begins;
    };
    ThreadPool pool(4);
    const auto first = boundaries(pool);
    const auto second = boundaries(pool);
    EXPECT_EQ(first, second);
}

TEST(ThreadPoolLowLatencyTest, EveryIndexVisitedExactlyOnce)
{
    // The low-latency flavour changes only how threads WAIT (bounded
    // spin before the CV), never what runs: same coverage contract as
    // parallelFor, including under back-to-back dispatch where the
    // spin phase actually engages.
    ThreadPool pool(4);
    for (int round = 0; round < 200; ++round) {
        std::vector<std::atomic<int>> hits(97);
        pool.parallelForLowLatency(
            97, 1, [&](std::int64_t b, std::int64_t e) {
                for (std::int64_t i = b; i < e; ++i)
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
            });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "index " << i << " round " << round;
    }
}

TEST(ThreadPoolLowLatencyTest, MixedFlavoursInterleaveSafely)
{
    // Alternating low-latency and plain loops flips the workers' spin
    // hint every dispatch; generations must not tangle.
    ThreadPool pool(3);
    for (int round = 0; round < 100; ++round) {
        std::atomic<std::int64_t> sum{0};
        const auto body = [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i)
                sum.fetch_add(i);
        };
        if (round % 2 == 0)
            pool.parallelForLowLatency(64, 1, body);
        else
            pool.parallelFor(64, 1, body);
        ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
    }
}

TEST(ThreadPoolLowLatencyTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> done{0};
    EXPECT_THROW(
        pool.parallelForLowLatency(
            100, 1,
            [&](std::int64_t b, std::int64_t e) {
                if (b == 0)
                    throw std::runtime_error("chunk fail");
                done.fetch_add(e - b);
            }),
        std::runtime_error);
    EXPECT_LE(done.load(), 100);
    // The pool is still serviceable after the failed loop.
    std::atomic<std::int64_t> sum{0};
    pool.parallelForLowLatency(64, 1,
                               [&](std::int64_t b, std::int64_t e) {
                                   for (std::int64_t i = b; i < e; ++i)
                                       sum.fetch_add(i);
                               });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPoolLowLatencyTest, ObserverSeesLowLatencyLoops)
{
    // Low-latency dispatches report through the same onParallelFor
    // hook as plain ones — the bench's dispatch-latency stats and the
    // kernel profiler rely on this.
    struct Counter : lia::base::ParallelObserver
    {
        std::atomic<int> loops{0};
        void onParallelFor(double seconds) override
        {
            ++loops;
            EXPECT_GE(seconds, 0.0);
        }
    } counter;
    ThreadPool pool(2);
    pool.setObserver(&counter);
    for (int i = 0; i < 5; ++i)
        pool.parallelForLowLatency(
            1000, 1, [](std::int64_t, std::int64_t) {});
    pool.setObserver(nullptr);
    EXPECT_EQ(counter.loops.load(), 5);
}

TEST(ThreadPoolLowLatencyTest, InlinePathsMatchParallelFor)
{
    // Serial pools and tiny ranges take the same inline shortcut.
    ThreadPool serial(1);
    std::int64_t visited = 0;
    serial.parallelForLowLatency(10, 1,
                                 [&](std::int64_t b, std::int64_t e) {
                                     visited += e - b;
                                 });
    EXPECT_EQ(visited, 10);
    ThreadPool pool(4);
    visited = 0;
    pool.parallelForLowLatency(3, 8,
                               [&](std::int64_t b, std::int64_t e) {
                                   visited += e - b;
                               });
    EXPECT_EQ(visited, 3);
}

} // namespace
