/**
 * @file
 * Tests for the deployment capacity planner.
 */

#include <gtest/gtest.h>

#include "core/capacity_planner.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

namespace {

using namespace lia;
using core::CapacityPlanner;
using core::PlannerRequest;

class CapacityPlannerTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt30b();
};

TEST_F(CapacityPlannerTest, ThroughputPlanningPicksLargeBatches)
{
    CapacityPlanner planner(sys, m);
    PlannerRequest req;
    req.lIn = 32;
    req.lOut = 32;
    const auto result = planner.plan(req);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.best.batch, 256);
    EXPECT_GT(result.best.throughput, 100);
}

TEST_F(CapacityPlannerTest, TightSloForcesSmallBatches)
{
    CapacityPlanner planner(sys, m);
    PlannerRequest relaxed;
    relaxed.lIn = 256;
    relaxed.lOut = 32;
    PlannerRequest tight = relaxed;
    tight.latencySlo = 10.0;  // seconds per query

    const auto free_plan = planner.plan(relaxed);
    const auto slo_plan = planner.plan(tight);
    ASSERT_TRUE(free_plan.feasible);
    ASSERT_TRUE(slo_plan.feasible);
    EXPECT_LT(slo_plan.best.batch, free_plan.best.batch);
    EXPECT_LE(slo_plan.best.estimate.latency(), 10.0);
}

TEST_F(CapacityPlannerTest, ImpossibleSloReported)
{
    CapacityPlanner planner(sys, m);
    PlannerRequest req;
    req.lIn = 256;
    req.lOut = 32;
    req.latencySlo = 0.001;  // nothing meets 1 ms
    const auto result = planner.plan(req);
    EXPECT_FALSE(result.feasible);
    EXPECT_NE(result.note.find("SLO"), std::string::npos);
    EXPECT_FALSE(result.candidates.empty());
}

TEST_F(CapacityPlannerTest, CxlPoolRaisesTheBatchCeiling)
{
    CapacityPlanner plain(sys, m);
    CapacityPlanner cxl(hw::withCxl(sys), m);
    PlannerRequest req;
    req.lIn = 512;  // long contexts keep the ceiling below maxBatch
    req.lOut = 32;
    EXPECT_GT(cxl.maxFeasibleBatch(req), plain.maxFeasibleBatch(req));
}

TEST_F(CapacityPlannerTest, CxlPlanOffloadsParameters)
{
    CapacityPlanner planner(hw::withCxl(sys), m);
    PlannerRequest req;
    req.lIn = 32;
    req.lOut = 32;
    const auto result = planner.plan(req);
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.best.estimate.placement.paramTier,
              core::HostTier::Cxl);
    EXPECT_NE(result.note.find("CXL"), std::string::npos);
}

TEST_F(CapacityPlannerTest, OversizedModelRejected)
{
    // OPT-175B at BF16 does not fit 512 GB DDR alongside a batch.
    CapacityPlanner planner(sys, model::opt175b());
    PlannerRequest req;
    req.lIn = 1024;
    req.lOut = 256;
    req.maxBatch = 8192;
    const auto result = planner.plan(req);
    if (!result.feasible)
        EXPECT_FALSE(result.note.empty());
    else
        EXPECT_LE(model::inferenceFootprint(
                      model::opt175b(), result.best.batch, 1024, 256)
                      .total(),
                  sys.cpuMemory.capacity * 1.01);
}

TEST_F(CapacityPlannerTest, CandidatesRespectMaxBatch)
{
    CapacityPlanner planner(sys, m);
    PlannerRequest req;
    req.lIn = 32;
    req.lOut = 32;
    req.maxBatch = 100;
    const auto result = planner.plan(req);
    ASSERT_TRUE(result.feasible);
    for (const auto &candidate : result.candidates)
        EXPECT_LE(candidate.batch, 100);
}

TEST_F(CapacityPlannerTest, BestIsArgmaxOfSloCandidates)
{
    CapacityPlanner planner(sys, m);
    PlannerRequest req;
    req.lIn = 128;
    req.lOut = 32;
    const auto result = planner.plan(req);
    ASSERT_TRUE(result.feasible);
    for (const auto &candidate : result.candidates) {
        if (candidate.meetsSlo) {
            EXPECT_LE(candidate.throughput,
                      result.best.throughput + 1e-9);
        }
    }
}

} // namespace
