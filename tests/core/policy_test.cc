/**
 * @file
 * Unit tests for offloading policy vectors.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "base/logging.hh"
#include "core/policy.hh"

namespace {

using namespace lia::core;
using lia::model::kNumSublayers;

TEST(PolicyTest, DefaultIsAllGpu)
{
    Policy p;
    for (int i = 0; i < kNumSublayers; ++i)
        EXPECT_EQ(p.device(i), Device::Gpu);
    EXPECT_EQ(p, Policy::fullGpu());
}

TEST(PolicyTest, FullCpuHasAllOnes)
{
    const Policy p = Policy::fullCpu();
    for (int i = 0; i < kNumSublayers; ++i)
        EXPECT_TRUE(p.onCpu(i));
    EXPECT_EQ(p.cpuCount(), 6);
}

TEST(PolicyTest, AttentionOnCpuMatchesPaperVector)
{
    // §7.1: partial CPU offloading is p = (0,1,1,0,0,0).
    const Policy p = Policy::attentionOnCpu();
    EXPECT_EQ(p.toString(), "(0,1,1,0,0,0)");
    EXPECT_TRUE(p.onCpu(1));
    EXPECT_TRUE(p.onCpu(2));
    EXPECT_EQ(p.cpuCount(), 2);
}

TEST(PolicyTest, ArrayConstructorMatchesMask)
{
    const Policy p(std::array<int, 6>{1, 0, 1, 0, 0, 1});
    EXPECT_EQ(p.mask(), 0b100101u);
    EXPECT_TRUE(p.onCpu(0));
    EXPECT_FALSE(p.onCpu(1));
    EXPECT_TRUE(p.onCpu(5));
}

TEST(PolicyTest, MaskRoundTrip)
{
    for (unsigned m = 0; m < Policy::kCount; ++m)
        EXPECT_EQ(Policy::fromMask(m).mask(), m);
}

TEST(PolicyTest, AllMasksDistinct)
{
    std::set<std::string> seen;
    for (unsigned m = 0; m < Policy::kCount; ++m)
        seen.insert(Policy::fromMask(m).toString());
    EXPECT_EQ(seen.size(), Policy::kCount);
}

TEST(PolicyTest, SetDeviceFlipsSingleBit)
{
    Policy p = Policy::fullGpu();
    p.setDevice(3, Device::Cpu);
    EXPECT_TRUE(p.onCpu(3));
    EXPECT_EQ(p.cpuCount(), 1);
    p.setDevice(3, Device::Gpu);
    EXPECT_EQ(p, Policy::fullGpu());
}

TEST(PolicyTest, SublayerEnumOverloadAgreesWithIndex)
{
    const Policy p = Policy::attentionOnCpu();
    EXPECT_EQ(p.device(lia::model::Sublayer::AttnScoreQK),
              p.device(1));
    EXPECT_EQ(p.device(lia::model::Sublayer::Fc2), p.device(5));
}

TEST(PolicyTest, OutOfRangeMaskPanics)
{
    lia::detail::setThrowOnError(true);
    EXPECT_THROW(Policy::fromMask(64), std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(PolicyTest, OutOfRangeIndexPanics)
{
    lia::detail::setThrowOnError(true);
    Policy p;
    EXPECT_THROW(p.device(6), std::logic_error);
    EXPECT_THROW(p.setDevice(-1, Device::Cpu), std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(PolicyTest, DeviceToString)
{
    EXPECT_STREQ(toString(Device::Cpu), "CPU");
    EXPECT_STREQ(toString(Device::Gpu), "GPU");
}

} // namespace
