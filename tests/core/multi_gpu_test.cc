/**
 * @file
 * Tests for the §8 multi-GPU LIA extension.
 */

#include <gtest/gtest.h>

#include "core/multi_gpu.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using core::MultiGpuLiaModel;
using core::Scenario;

class MultiGpuLiaTest : public ::testing::Test
{
  protected:
    hw::SystemConfig base = hw::sprA100();
    model::ModelConfig m = model::opt175b();
};

TEST_F(MultiGpuLiaTest, SingleGpuMatchesPlainEngine)
{
    MultiGpuLiaModel one(base, m, 1, hw::nvlink3());
    core::EngineConfig cfg;
    cfg.costOptions.executionAwareObjective = true;
    core::EngineModel plain(base, m, cfg);
    const Scenario sc{64, 512, 32};
    EXPECT_NEAR(one.estimate(sc).latency(),
                plain.estimate(sc).latency(), 1e-9);
}

TEST_F(MultiGpuLiaTest, MoreGpusNeverSlower)
{
    const Scenario sc{900, 256, 32};
    double prev = 1e30;
    for (int n : {1, 2, 4, 8}) {
        MultiGpuLiaModel tp(base, m, n, hw::nvlink3());
        const double t = tp.estimate(sc).latency();
        EXPECT_LE(t, prev * 1.001) << n << " GPUs";
        prev = t;
    }
}

TEST_F(MultiGpuLiaTest, ScalingIsSubLinear)
{
    // §8: communication overhead erodes the scaling impact.
    const Scenario sc{900, 256, 32};
    MultiGpuLiaModel one(base, m, 1, hw::nvlink3());
    MultiGpuLiaModel eight(base, m, 8, hw::nvlink3());
    const double speedup = one.estimate(sc).latency() /
                           eight.estimate(sc).latency();
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 8.0);
}

TEST_F(MultiGpuLiaTest, PcieFabricScalesWorseThanNvlink)
{
    // §8: scaling suffers "especially when the GPUs are connected
    // via PCIe interconnects".
    const Scenario sc{900, 256, 32};
    MultiGpuLiaModel nvlink(base, m, 4, hw::nvlink3());
    MultiGpuLiaModel pcie(base, m, 4, hw::pcie4x16());
    EXPECT_LT(nvlink.estimate(sc).latency(),
              pcie.estimate(sc).latency());
}

TEST_F(MultiGpuLiaTest, GpusShiftPoliciesTowardGpu)
{
    // Aggregate PCIe bandwidth scales with GPU count, so the GPU
    // handles computation more frequently (§8).
    const Scenario sc{256, 512, 32};
    MultiGpuLiaModel one(base, m, 1, hw::nvlink3());
    MultiGpuLiaModel eight(base, m, 8, hw::nvlink3());
    const auto p1 = one.estimate(sc).decodePolicy;
    const auto p8 = eight.estimate(sc).decodePolicy;
    EXPECT_LE(p8.cpuCount(), p1.cpuCount());
    // With 8x aggregate PCIe even the KV stream can move to the
    // GPUs; all parameter sublayers certainly do.
    EXPECT_NE(p8, core::Policy::fullCpu());
    EXPECT_LE(p8.cpuCount(), 2);
}

TEST_F(MultiGpuLiaTest, NoCommChargedForCpuOnlyPolicies)
{
    // Small-batch decode stays on the CPU; no all-reduce applies.
    MultiGpuLiaModel tp(base, m, 4, hw::nvlink3());
    const auto est = tp.estimate({1, 128, 16});
    EXPECT_EQ(est.decodePolicy, core::Policy::fullCpu());
}

TEST_F(MultiGpuLiaTest, PooledSystemAggregatesResources)
{
    MultiGpuLiaModel tp(base, m, 4, hw::nvlink3());
    const auto &pooled = tp.pooledSystem();
    EXPECT_NEAR(pooled.gpu.peakMatmulThroughput,
                4.0 * base.gpu.peakMatmulThroughput, 1.0);
    EXPECT_NEAR(pooled.hostLink.bandwidth,
                4.0 * base.hostLink.bandwidth, 1.0);
    EXPECT_GT(pooled.systemCost, base.systemCost);
}

TEST_F(MultiGpuLiaTest, LargerHbmPoolRaisesResidency)
{
    // Pooled HBM admits more resident layers (or all of them).
    MultiGpuLiaModel one(base, m, 1, hw::nvlink3());
    MultiGpuLiaModel eight(base, m, 8, hw::nvlink3());
    const Scenario sc{1, 512, 32};
    EXPECT_GT(eight.estimate(sc).residency.residentLayers,
              one.estimate(sc).residency.residentLayers);
}

} // namespace
