/**
 * @file
 * Tests for the Optimization-1 GPU residency planner.
 */

#include <gtest/gtest.h>

#include "core/residency.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::core;

TEST(ResidencyTest, Opt30bB1MatchesPaperExample)
{
    // §5.2: OPT-30B at B=1, L=2016 keeps ~62% of layers (~30 of 48)
    // on a 40 GB A100 using ~35 GB.
    const auto plan = planResidency(hw::sprA100(), model::opt30b(), 1,
                                    2016, false, 2048);
    EXPECT_NEAR(plan.residentLayers, 30, 3);
    EXPECT_NEAR(plan.gpuBytesUsed, 35e9, 5e9);
    EXPECT_NEAR(plan.residentFraction(48), 0.62, 0.08);
}

TEST(ResidencyTest, LargerBatchLeavesFewerResidentLayers)
{
    // Table 4: Optimization-1's benefit shrinks with B because the
    // activation working set grows.
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    int prev = 1000;
    for (std::int64_t b : {1, 64, 256, 900}) {
        const auto plan = planResidency(sys, m, b, 256, false, 288);
        EXPECT_LE(plan.residentLayers, prev) << "B=" << b;
        prev = plan.residentLayers;
    }
}

TEST(ResidencyTest, ResidentLayersCappedAtModelSize)
{
    // A tiny model fits entirely.
    const auto plan = planResidency(hw::sprA100(), model::tinyOpt(), 1,
                                    16, false, 32);
    EXPECT_EQ(plan.residentLayers, 4);
}

TEST(ResidencyTest, KvOnGpuReservationShrinksResidency)
{
    const auto sys = hw::sprA100();
    const auto m = model::opt13b();
    const auto without = planResidency(sys, m, 32, 512, false, 1024);
    const auto with_kv = planResidency(sys, m, 32, 512, true, 1024);
    EXPECT_LT(with_kv.residentLayers, without.residentLayers);
    EXPECT_GT(with_kv.reservedBytes, without.reservedBytes);
}

TEST(ResidencyTest, NothingFitsWhenReserveExceedsCapacity)
{
    // OPT-175B at huge batch: activations alone exceed 40 GB.
    const auto plan = planResidency(hw::sprA100(), model::opt175b(),
                                    900, 1024, false, 1056);
    EXPECT_EQ(plan.residentLayers, 0);
    EXPECT_DOUBLE_EQ(plan.gpuBytesUsed, 0.0);
}

TEST(ResidencyTest, FlexGenGranularityWastesCapacity)
{
    // §5.2: FlexGen's coarse sublayer-across-layers quanta cache less
    // than LIA's whole-layer allocation in the same spare memory.
    // OPT-66B's 64 layers make the FlexGen quantum (5.33 layers'
    // worth) misalign with the spare capacity.
    const auto sys = hw::sprA100();
    const auto m = model::opt66b();
    const auto lia = planResidency(sys, m, 1, 2016, false, 2048,
                                   CacheGranularity::WholeLayer);
    const auto flexgen =
        planResidency(sys, m, 1, 2016, false, 2048,
                      CacheGranularity::SublayerAcrossLayers);
    EXPECT_LT(flexgen.gpuBytesUsed, lia.gpuBytesUsed);
    EXPECT_GT(flexgen.uniformCachedFraction, 0.0);
    EXPECT_LT(flexgen.uniformCachedFraction, 1.0);
    EXPECT_EQ(lia.uniformCachedFraction, 0.0);
}

TEST(ResidencyTest, FlexGenFractionNeverExceedsOne)
{
    const auto plan =
        planResidency(hw::sprA100(), model::tinyOpt(), 1, 16, false, 32,
                      CacheGranularity::SublayerAcrossLayers);
    EXPECT_LE(plan.uniformCachedFraction, 1.0);
    EXPECT_GT(plan.uniformCachedFraction, 0.99);
}

TEST(ResidencyTest, PerLayerBytesMatchModel)
{
    const auto m = model::opt66b();
    const auto plan = planResidency(hw::sprH100(), m, 1, 512, false,
                                    1024);
    EXPECT_DOUBLE_EQ(plan.perLayerBytes, m.decoderLayerParamBytes());
}

} // namespace
