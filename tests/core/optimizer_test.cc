/**
 * @file
 * Tests for the exhaustive Eq. (1) policy optimizer.
 */

#include <gtest/gtest.h>

#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::core;
using lia::model::Stage;
using lia::model::Workload;

class OptimizerTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt175b();
    CostModel cm{sys, m, {}};
    PolicyOptimizer opt{cm};
};

TEST_F(OptimizerTest, OptimumBeatsOrTiesEveryPolicy)
{
    // The returned policy is the exhaustive argmin of Eq. (2).
    for (auto stage : {Stage::Prefill, Stage::Decode}) {
        Workload w{stage, 32, 512};
        const auto best = opt.optimize(w);
        for (unsigned mask = 0; mask < Policy::kCount; ++mask) {
            const auto t =
                cm.layerTiming(w, Policy::fromMask(mask)).serialTime();
            EXPECT_LE(best.timing.serialTime(), t + 1e-12)
                << Policy::fromMask(mask).toString();
        }
    }
}

TEST_F(OptimizerTest, SmallBatchDecodePrefersFullCpu)
{
    // Fig. 9: all sublayers on the CPU for small B.
    Workload w{Stage::Decode, 1, 512};
    EXPECT_EQ(opt.optimize(w).policy, Policy::fullCpu());
}

TEST_F(OptimizerTest, LargeBatchDecodePrefersAttentionOnCpu)
{
    // Fig. 9: beyond the crossover, parameter sublayers move to the
    // GPU while attention stays on the CPU.
    Workload w{Stage::Decode, 1600, 512};
    EXPECT_EQ(opt.optimize(w).policy, Policy::attentionOnCpu());
}

TEST_F(OptimizerTest, SmallPrefillPrefersFullCpu)
{
    Workload w{Stage::Prefill, 1, 64};
    EXPECT_EQ(opt.optimize(w).policy, Policy::fullCpu());
}

TEST_F(OptimizerTest, LargePrefillPrefersFullGpu)
{
    Workload w{Stage::Prefill, 8, 1024};
    EXPECT_EQ(opt.optimize(w).policy, Policy::fullGpu());
}

TEST_F(OptimizerTest, OnlyThePaperPoliciesAppearAcrossTheMap)
{
    // §7.1: LIA identifies three primary policies over the whole
    // (B, L) operating range.
    for (auto stage : {Stage::Prefill, Stage::Decode}) {
        for (std::int64_t b : {1, 4, 16, 64, 256, 900, 1600}) {
            for (std::int64_t l : {32, 128, 512, 1024, 2016}) {
                Workload w{stage, b, l};
                const auto p = opt.optimize(w).policy;
                const bool known = p == Policy::fullCpu() ||
                                   p == Policy::fullGpu() ||
                                   p == Policy::attentionOnCpu();
                EXPECT_TRUE(known)
                    << p.toString() << " at B=" << b << " L=" << l
                    << " " << toString(stage);
            }
        }
    }
}

TEST_F(OptimizerTest, ResidentOptimizationPrefersGpuAtSmallBatch)
{
    // With parameters already on the GPU, streaming cost vanishes and
    // the GPU wins the parameter sublayers even at B=1.
    Workload w{Stage::Decode, 1, 512};
    const auto resident = opt.optimize(w, true);
    EXPECT_EQ(resident.policy.device(0), Device::Gpu);
    EXPECT_LE(resident.timing.serialTime(),
              opt.optimize(w, false).timing.serialTime());
}

TEST_F(OptimizerTest, RankIsSortedAndComplete)
{
    Workload w{Stage::Decode, 64, 512};
    const auto ranked = opt.rank(w);
    ASSERT_EQ(ranked.size(), Policy::kCount);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_LE(ranked[i - 1].timing.serialTime(),
                  ranked[i].timing.serialTime() + 1e-12);
    }
    EXPECT_EQ(ranked.front().policy, opt.optimize(w).policy);
}

TEST_F(OptimizerTest, H100ShiftsCrossoverTowardGpu)
{
    // §7.1 "Impact of GPU capability": H100 picks GPU-centric
    // policies over a broader range than A100.
    CostModel cm_h100(hw::sprH100(), m, {});
    PolicyOptimizer opt_h100(cm_h100);
    // Find the A100 and H100 decode crossovers by bisection.
    auto crossover = [&](PolicyOptimizer &o) {
        std::int64_t lo = 1, hi = 4096;
        while (lo < hi) {
            const std::int64_t mid = (lo + hi) / 2;
            Workload w{Stage::Decode, mid, 512};
            if (o.optimize(w).policy == Policy::fullCpu())
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    };
    EXPECT_LT(crossover(opt_h100), crossover(opt));
}

TEST(OptimizerMoeTest, MoeModelsPreferCpuFfnSublayers)
{
    // §7.1 adaptability: as experts multiply, FC1/FC2 lose intensity
    // and CPU execution beats shipping every expert over PCIe.
    const auto sys = hw::sprA100();
    auto moe = lia::model::moeMixtral8x7b();
    // Scale up the expert count to exaggerate the effect.
    moe.numExperts = 32;
    CostModel cm(sys, moe, {});
    PolicyOptimizer opt(cm);
    Workload w{Stage::Decode, 1600, 512};
    const auto p = opt.optimize(w).policy;
    EXPECT_TRUE(p.onCpu(4));
    EXPECT_TRUE(p.onCpu(5));
    // Attention stays on the CPU too; QKV/out-projection follow the
    // dense-model large-batch preference.
    EXPECT_TRUE(p.onCpu(1));
    EXPECT_TRUE(p.onCpu(2));
}

} // namespace
