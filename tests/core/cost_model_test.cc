/**
 * @file
 * Tests for the Eq. (1)-(9) analytical cost model.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "core/cost_model.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/sublayer.hh"

namespace {

using namespace lia;
using namespace lia::core;
using lia::model::Stage;
using lia::model::Workload;

class CostModelTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt175b();
    CostModel cm{sys, m, {}};
};

TEST_F(CostModelTest, FullCpuHasNoPcieTraffic)
{
    Workload w{Stage::Decode, 8, 512};
    const auto t = cm.layerTiming(w, Policy::fullCpu());
    EXPECT_DOUBLE_EQ(t.pcieBytes(), 0.0);
    EXPECT_DOUBLE_EQ(t.gpuTime, 0.0);
    EXPECT_GT(t.cpuTime, 0.0);
}

TEST_F(CostModelTest, FullGpuStreamsAllParameters)
{
    Workload w{Stage::Decode, 8, 512};
    const auto t = cm.layerTiming(w, Policy::fullGpu());
    // All four parameter sublayers stream: 24*d^2 bytes per layer.
    const double d = 12288;
    EXPECT_DOUBLE_EQ(t.paramPcieBytes, 24.0 * d * d);
    EXPECT_DOUBLE_EQ(t.cpuTime, 0.0);
    EXPECT_GT(t.gpuTime, 0.0);
}

TEST_F(CostModelTest, GpuResidencySkipsParameterTransfer)
{
    Workload w{Stage::Decode, 8, 512};
    const auto stream = cm.layerTiming(w, Policy::fullGpu(), false);
    const auto resident = cm.layerTiming(w, Policy::fullGpu(), true);
    EXPECT_DOUBLE_EQ(resident.paramPcieBytes, 0.0);
    EXPECT_LT(resident.time(true), stream.time(true));
}

TEST_F(CostModelTest, DecodeGpuAttentionStreamsKvCache)
{
    Workload w{Stage::Decode, 8, 512};
    const auto t = cm.layerTiming(w, Policy::fullGpu());
    // Q*K^T and S*V each read the full 2BLd cache, plus sublayer 1
    // stores the fresh 4Bd KV back (Eq. 9).
    const double d = 12288;
    const double expected = 2.0 * (2.0 * 8 * 512 * d) + 4.0 * 8 * d;
    EXPECT_DOUBLE_EQ(t.kvPcieBytes, expected);
}

TEST_F(CostModelTest, AttentionOnCpuAvoidsKvCacheTraffic)
{
    Workload w{Stage::Decode, 8, 512};
    const auto t = cm.layerTiming(w, Policy::attentionOnCpu());
    // Only the freshly produced 4Bd KV store-back (Eq. 9) remains;
    // the 2BLd cache never crosses PCIe.
    EXPECT_DOUBLE_EQ(t.kvPcieBytes, 4.0 * 8 * 12288);
    EXPECT_GT(t.actPcieBytes, 0.0);  // hops around the CPU island
}

TEST_F(CostModelTest, ActivationHopsFollowDeviceChanges)
{
    Workload w{Stage::Decode, 4, 256};
    // (0,1,1,0,0,0): GPU->CPU before sublayer 2, CPU->GPU before 4.
    const auto t = cm.layerTiming(w, Policy::attentionOnCpu());
    const double d = 12288;
    // dX hops: into sublayer 2 (2Bd), into sublayer 4 (S... dX of
    // sublayer 4 is 2Bd) — plus no residual hops (p4==p1, p6==p4).
    EXPECT_DOUBLE_EQ(t.actPcieBytes, 2.0 * (2.0 * 4 * d));
}

TEST_F(CostModelTest, ResidualHopChargedWhenDevicesDiffer)
{
    Workload w{Stage::Decode, 4, 256};
    // Sublayer 1 on CPU, sublayer 4 on GPU: residual must cross.
    Policy p = Policy::fullGpu();
    p.setDevice(0, Device::Cpu);
    const auto t = cm.layerTiming(w, p);
    // Hops: into sublayer 2 (CPU->GPU) and p0!=p5 wrap hop into
    // sublayer 1, plus the residual into sublayer 4.
    const double d = 12288;
    EXPECT_DOUBLE_EQ(t.actPcieBytes, 3.0 * (2.0 * 4 * d));
}

TEST_F(CostModelTest, PrefillKvTransfersOnlyWhenSplitFromQkv)
{
    Workload w{Stage::Prefill, 2, 128};
    // Attention together with QKV on the GPU: no KV PCIe except the
    // Eq. 9 store-back of the fresh cache.
    const auto same = cm.layerTiming(w, Policy::fullGpu());
    EXPECT_DOUBLE_EQ(same.kvPcieBytes, 4.0 * 2 * 128 * 12288.0);
    // Attention on CPU but QKV on GPU: K and V must cross (Eq. 7).
    const auto split = cm.layerTiming(w, Policy::attentionOnCpu());
    EXPECT_GT(split.kvPcieBytes, same.kvPcieBytes);
}

TEST_F(CostModelTest, SerialTimeIsSumOfComponents)
{
    Workload w{Stage::Decode, 16, 512};
    for (unsigned mask = 0; mask < Policy::kCount; ++mask) {
        const auto t = cm.layerTiming(w, Policy::fromMask(mask));
        EXPECT_NEAR(t.serialTime(),
                    t.prefetchPcieTime + t.inlinePcieTime + t.cpuTime +
                        t.gpuTime,
                    1e-12);
    }
}

TEST_F(CostModelTest, OverlappedNeverExceedsSerial)
{
    for (auto stage : {Stage::Prefill, Stage::Decode}) {
        Workload w{stage, 32, 256};
        for (unsigned mask = 0; mask < Policy::kCount; ++mask) {
            const auto t = cm.layerTiming(w, Policy::fromMask(mask));
            EXPECT_LE(t.overlappedTime(), t.serialTime() + 1e-12);
            EXPECT_GE(t.overlappedTime(),
                      std::max(t.prefetchPcieTime,
                               t.cpuTime + t.gpuTime) -
                          1e-12);
        }
    }
}

TEST_F(CostModelTest, LayerTimingIsSumOfSublayerTimings)
{
    Workload w{Stage::Prefill, 8, 256};
    const Policy p = Policy::attentionOnCpu();
    const auto layer = cm.layerTiming(w, p);
    double prefetch = 0, inline_t = 0, cpu = 0, gpu = 0, bytes = 0;
    for (int i = 0; i < model::kNumSublayers; ++i) {
        const auto s = cm.sublayerTiming(w, p, i);
        prefetch += s.prefetchPcieTime;
        inline_t += s.inlinePcieTime + s.storePcieTime;
        cpu += s.cpuTime;
        gpu += s.gpuTime;
        bytes += s.pcieBytes();
    }
    EXPECT_NEAR(layer.prefetchPcieTime, prefetch, 1e-12);
    EXPECT_NEAR(layer.inlinePcieTime, inline_t, 1e-12);
    EXPECT_NEAR(layer.cpuTime, cpu, 1e-12);
    EXPECT_NEAR(layer.gpuTime, gpu, 1e-12);
    EXPECT_NEAR(layer.pcieBytes(), bytes, 1e-6);
}

class CostModelMonotoneTest
    : public ::testing::TestWithParam<unsigned>
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt30b();
    CostModel cm{sys, m, {}};
};

TEST_P(CostModelMonotoneTest, SerialTimeNonDecreasingInBatch)
{
    const Policy p = Policy::fromMask(GetParam());
    double prev = 0;
    for (std::int64_t b : {1, 2, 4, 8, 16, 32, 64, 128}) {
        Workload w{Stage::Decode, b, 256};
        const double t = cm.layerTiming(w, p).serialTime();
        EXPECT_GE(t, prev) << "B=" << b;
        prev = t;
    }
}

TEST_P(CostModelMonotoneTest, SerialTimeNonDecreasingInContext)
{
    const Policy p = Policy::fromMask(GetParam());
    double prev = 0;
    for (std::int64_t l : {32, 64, 128, 256, 512, 1024}) {
        Workload w{Stage::Decode, 8, l};
        const double t = cm.layerTiming(w, p).serialTime();
        EXPECT_GE(t, prev) << "L=" << l;
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CostModelMonotoneTest,
                         ::testing::Values(0b000000u, 0b111111u,
                                           0b000110u, 0b101010u,
                                           0b010101u, 0b111000u,
                                           0b000111u, 0b100001u));

TEST(CostModelCxlTest, ParamsInCxlSlowCpuComputeOnly)
{
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt175b();
    Workload w{Stage::Decode, 64, 512};

    CostModelOptions ddr_opts;
    CostModelOptions cxl_opts;
    cxl_opts.paramTier = HostTier::Cxl;
    CostModel ddr(sys, m, ddr_opts);
    CostModel cxl(sys, m, cxl_opts);

    // CPU-computed parameter sublayers degrade (Observation-2)...
    const auto cpu_ddr = ddr.layerTiming(w, Policy::fullCpu());
    const auto cpu_cxl = cxl.layerTiming(w, Policy::fullCpu());
    EXPECT_GT(cpu_cxl.cpuTime, cpu_ddr.cpuTime * 1.5);

    // ...but GPU transfers are PCIe-bound either way (Observation-1;
    // two 17 GB/s expanders exceed the PCIe 4.0 link).
    const auto gpu_ddr = ddr.layerTiming(w, Policy::fullGpu());
    const auto gpu_cxl = cxl.layerTiming(w, Policy::fullGpu());
    EXPECT_NEAR(gpu_cxl.prefetchPcieTime, gpu_ddr.prefetchPcieTime,
                0.25 * gpu_ddr.prefetchPcieTime);
}

TEST(CostModelCxlTest, KvInCxlHurtsCpuAttentionMore)
{
    // Observation-2: sublayer 2's ops/byte of ~1 makes it the most
    // bandwidth-sensitive victim of CXL placement.
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt175b();
    Workload w{Stage::Decode, 64, 1024};

    CostModelOptions opts;
    opts.kvTier = HostTier::Cxl;
    CostModel cxl(sys, m, opts);
    CostModel ddr(sys, m, {});

    const auto t_cxl = cxl.sublayerTiming(w, Policy::fullCpu(), 1);
    const auto t_ddr = ddr.sublayerTiming(w, Policy::fullCpu(), 1);
    EXPECT_GT(t_cxl.cpuTime, 3.0 * t_ddr.cpuTime);
}

TEST(CostModelCxlTest, CxlTierWithoutPoolPanics)
{
    lia::detail::setThrowOnError(true);
    CostModelOptions opts;
    opts.paramTier = HostTier::Cxl;
    EXPECT_THROW(CostModel(hw::sprA100(), model::opt30b(), opts),
                 std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(CostModelKvGpuTest, KvOnGpuRemovesDecodeKvTraffic)
{
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    CostModelOptions opts;
    opts.kvOnGpu = true;
    CostModel cm(sys, m, opts);
    Workload w{Stage::Decode, 1, 512};
    const auto t = cm.layerTiming(w, Policy::fullGpu());
    EXPECT_DOUBLE_EQ(t.kvPcieBytes, 0.0);
}

TEST(CostModelMiniBatchTest, DecodeMiniBatchingSlowsCompute)
{
    // §5.2 Optimization-2: FlexGen-style decode mini-batching loses
    // compute efficiency; LIA's full-batch decode avoids that.
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    CostModelOptions full;
    CostModelOptions mini;
    mini.decodeMiniBatchOverlap = true;
    CostModel cm_full(sys, m, full);
    CostModel cm_mini(sys, m, mini);
    Workload w{Stage::Decode, 900, 256};
    const auto t_full = cm_full.layerTiming(w, Policy::fullGpu());
    const auto t_mini = cm_mini.layerTiming(w, Policy::fullGpu());
    EXPECT_GT(t_mini.gpuTime, t_full.gpuTime * 1.02);
}

} // namespace

namespace {

using namespace lia;
using namespace lia::core;
using lia::model::Stage;
using lia::model::Workload;

TEST(CostModelCxlTest, PoolThrottlesPcie5Transfers)
{
    // The Observation-1 parity holds only while the interleaved pool
    // supplies at least PCIe bandwidth. Two 17 GB/s expanders exceed
    // PCIe 4.0 (26 GB/s) but throttle a PCIe 5.0 link (52 GB/s).
    const auto m = model::opt175b();
    Workload w{Stage::Decode, 900, 128};
    CostModelOptions cxl_opts;
    cxl_opts.paramTier = HostTier::Cxl;

    CostModel h100_ddr(hw::withCxl(hw::sprH100()), m, {});
    CostModel h100_cxl(hw::withCxl(hw::sprH100()), m, cxl_opts);
    const auto ddr = h100_ddr.layerTiming(w, Policy::fullGpu());
    const auto cxl = h100_cxl.layerTiming(w, Policy::fullGpu());
    EXPECT_GT(cxl.prefetchPcieTime, 1.4 * ddr.prefetchPcieTime);

    CostModel a100_ddr(hw::withCxl(hw::sprA100()), m, {});
    CostModel a100_cxl(hw::withCxl(hw::sprA100()), m, cxl_opts);
    const auto ddr4 = a100_ddr.layerTiming(w, Policy::fullGpu());
    const auto cxl4 = a100_cxl.layerTiming(w, Policy::fullGpu());
    EXPECT_NEAR(cxl4.prefetchPcieTime, ddr4.prefetchPcieTime,
                0.05 * ddr4.prefetchPcieTime);
}

TEST(CostModelOptionsTest, SetOptionsRevalidatesTiers)
{
    detail::setThrowOnError(true);
    CostModel cm(hw::sprA100(), model::opt30b(), {});
    CostModelOptions bad;
    bad.paramTier = HostTier::Cxl;  // no pool on plain SPR-A100
    EXPECT_THROW(cm.setOptions(bad), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(CostModelChunkTest, FullCpuPolicyNeverMiniBatches)
{
    // Table 4's no-Opt-2 row is exactly a no-op at B=1 because the
    // all-CPU policy moves nothing worth overlapping.
    const auto m = model::opt30b();
    CostModelOptions on;
    CostModelOptions off;
    off.overlap = false;
    CostModel cm_on(hw::sprA100(), m, on);
    CostModel cm_off(hw::sprA100(), m, off);
    Workload w{Stage::Prefill, 1, 256};
    EXPECT_DOUBLE_EQ(
        cm_on.layerTiming(w, Policy::fullCpu()).serialTime(),
        cm_off.layerTiming(w, Policy::fullCpu()).serialTime());
}

} // namespace
