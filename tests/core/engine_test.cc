/**
 * @file
 * Tests for the end-to-end inference estimator.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "core/engine.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::core;

class EngineTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt30b();
};

TEST_F(EngineTest, LatencySplitsIntoStages)
{
    EngineModel engine(sys, m);
    const auto est = engine.estimate({1, 256, 32});
    EXPECT_GT(est.prefillTime, 0);
    EXPECT_GT(est.decodeTime, 0);
    EXPECT_DOUBLE_EQ(est.latency(), est.prefillTime + est.decodeTime);
    EXPECT_TRUE(est.feasible);
}

TEST_F(EngineTest, ThroughputCountsGeneratedTokens)
{
    EngineModel engine(sys, m);
    const Scenario sc{64, 256, 32};
    const auto est = engine.estimate(sc);
    EXPECT_NEAR(est.throughput(sc), 64.0 * 32.0 / est.latency(), 1e-9);
}

TEST_F(EngineTest, MoreOutputTokensTakeLonger)
{
    EngineModel engine(sys, m);
    const auto short_run = engine.estimate({1, 256, 32});
    const auto long_run = engine.estimate({1, 256, 256});
    EXPECT_GT(long_run.decodeTime, short_run.decodeTime * 4);
    EXPECT_NEAR(long_run.prefillTime, short_run.prefillTime, 1e-9);
}

TEST_F(EngineTest, CpuOnlyNeverTouchesGpuOrPcie)
{
    EngineConfig cfg;
    cfg.cpuOnly = true;
    cfg.enableResidency = false;
    cfg.costOptions.overlap = false;
    EngineModel engine(sys, m, cfg);
    const auto est = engine.estimate({8, 256, 32});
    EXPECT_DOUBLE_EQ(est.breakdown.gpuTime, 0.0);
    EXPECT_DOUBLE_EQ(est.breakdown.comTime, 0.0);
    EXPECT_DOUBLE_EQ(est.pcieBytes, 0.0);
    EXPECT_EQ(est.prefillPolicy, Policy::fullCpu());
}

TEST_F(EngineTest, ForcedPoliciesAreRespected)
{
    EngineConfig cfg;
    cfg.optimizePolicies = false;
    cfg.forcedPrefillPolicy = Policy::fullGpu();
    cfg.forcedDecodePolicy = Policy::attentionOnCpu();
    cfg.enableResidency = false;
    EngineModel engine(sys, m, cfg);
    const auto est = engine.estimate({8, 256, 32});
    EXPECT_EQ(est.prefillPolicy, Policy::fullGpu());
    EXPECT_EQ(est.decodePolicy, Policy::attentionOnCpu());
}

TEST_F(EngineTest, OverlapReducesLatency)
{
    EngineConfig with;
    EngineConfig without;
    without.costOptions.overlap = false;
    // Use a forced GPU-heavy policy so there is traffic to overlap.
    for (auto *cfg : {&with, &without}) {
        cfg->optimizePolicies = false;
        cfg->forcedPrefillPolicy = Policy::fullGpu();
        cfg->forcedDecodePolicy = Policy::attentionOnCpu();
        cfg->enableResidency = false;
    }
    const auto est_with = EngineModel(sys, m, with).estimate({64, 256, 32});
    const auto est_without =
        EngineModel(sys, m, without).estimate({64, 256, 32});
    EXPECT_LT(est_with.latency(), est_without.latency());
}

TEST_F(EngineTest, ResidencyReducesLatencyAtSmallBatch)
{
    // Table 4: disabling Optimization-1 roughly doubles B=1 latency.
    EngineConfig on;
    EngineConfig off;
    off.enableResidency = false;
    const auto est_on = EngineModel(sys, m, on).estimate({1, 256, 32});
    const auto est_off = EngineModel(sys, m, off).estimate({1, 256, 32});
    EXPECT_LT(est_on.latency(), est_off.latency());
    EXPECT_GT(est_on.residency.residentLayers, 0);
}

TEST_F(EngineTest, ResidencyEffectShrinksAtLargeBatch)
{
    EngineConfig on;
    EngineConfig off;
    off.enableResidency = false;
    const Scenario big{900, 256, 32};
    const double gain_big =
        EngineModel(sys, m, off).estimate(big).latency() /
        EngineModel(sys, m, on).estimate(big).latency();
    const Scenario small{1, 256, 32};
    const double gain_small =
        EngineModel(sys, m, off).estimate(small).latency() /
        EngineModel(sys, m, on).estimate(small).latency();
    EXPECT_GT(gain_small, gain_big);
}

TEST_F(EngineTest, InfeasibleWhenHostMemoryOverflows)
{
    // OPT-175B params (350 GB) + giant KV cannot fit 512 GB DDR.
    EngineModel engine(sys, model::opt175b());
    const auto est = engine.estimate({512, 1024, 256});
    EXPECT_FALSE(est.feasible);
    EXPECT_FALSE(est.note.empty());
}

TEST_F(EngineTest, KvOnGpuOomDetected)
{
    EngineConfig cfg;
    cfg.optimizePolicies = false;
    cfg.forcedPrefillPolicy = Policy::fullGpu();
    cfg.forcedDecodePolicy = Policy::fullGpu();
    cfg.costOptions.kvOnGpu = true;
    EngineModel engine(sys, m, cfg);
    // 900 x 1024 tokens of KV greatly exceeds 40 GB HBM.
    const auto est = engine.estimate({900, 1024, 32});
    EXPECT_FALSE(est.feasible);
    EXPECT_NE(est.note.find("GPU"), std::string::npos);
}

TEST_F(EngineTest, AutoMemoryPolicyUsesCxlAtLargeBatch)
{
    EngineModel engine(hw::withCxl(sys), m);
    const auto est = engine.estimate({900, 32, 32});
    EXPECT_EQ(est.placement.paramTier, HostTier::Cxl);
    EXPECT_GT(est.placement.cxlBytes, 0);
}

TEST_F(EngineTest, AutoMemoryPolicyKeepsDdrAtSmallBatch)
{
    EngineModel engine(hw::withCxl(sys), m);
    const auto est = engine.estimate({1, 256, 32});
    EXPECT_EQ(est.placement.paramTier, HostTier::Ddr);
}

TEST_F(EngineTest, ScenarioValidation)
{
    detail::setThrowOnError(true);
    EngineModel engine(sys, m);
    EXPECT_THROW(engine.estimate({0, 256, 32}), std::logic_error);
    EXPECT_THROW(engine.estimate({1, 0, 32}), std::logic_error);
    EXPECT_THROW(engine.estimate({1, 2040, 32}), std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(EngineTest, BreakdownComponentsArePositiveAndConsistent)
{
    EngineModel engine(sys, m);
    const auto est = engine.estimate({64, 256, 32});
    EXPECT_GE(est.breakdown.cpuTime, 0);
    EXPECT_GE(est.breakdown.gpuTime, 0);
    EXPECT_GE(est.breakdown.comTime, 0);
    // Serial component sum bounds the overlapped latency from above.
    EXPECT_GE(est.breakdown.cpuTime + est.breakdown.gpuTime +
                  est.breakdown.comTime,
              est.latency() - 1e-9);
}

} // namespace
