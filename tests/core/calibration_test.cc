/**
 * @file
 * Whole-model calibration against the paper's reported operating
 * points: Fig. 9 policy regions and Table 4/5's absolute latencies.
 *
 * These tests pin the reproduction to the paper's *shape*: which
 * policy wins where, roughly where crossovers fall, and the order of
 * magnitude of end-to-end latencies (our substrate is a calibrated
 * model, not the authors' testbed, so the tolerances are generous).
 */

#include <gtest/gtest.h>

#include "baselines/presets.hh"
#include "core/engine.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::core;
using lia::model::Stage;
using lia::model::Workload;

std::int64_t
decodeCrossover(const CostModel &cm)
{
    PolicyOptimizer opt(cm);
    std::int64_t lo = 1, hi = 4096;
    while (lo < hi) {
        const std::int64_t mid = (lo + hi) / 2;
        Workload w{Stage::Decode, mid, 512};
        if (opt.optimize(w).policy == Policy::fullCpu())
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

std::int64_t
prefillCrossover(const CostModel &cm)
{
    PolicyOptimizer opt(cm);
    std::int64_t lo = 1, hi = 2048;
    while (lo < hi) {
        const std::int64_t mid = (lo + hi) / 2;
        Workload w{Stage::Prefill, 1, mid};
        if (opt.optimize(w).policy == Policy::fullCpu())
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

TEST(CalibrationFig9, DecodeCrossoverNearPaperValue)
{
    // §7.1: the CPU -> partial-offload transition sits near B=858 for
    // OPT-175B on the evaluation system.
    CostModel cm(hw::sprA100(), model::opt175b(), {});
    const auto b_star = decodeCrossover(cm);
    EXPECT_GT(b_star, 400);
    EXPECT_LT(b_star, 1100);
}

TEST(CalibrationFig9, PrefillCrossoverNearPaperValue)
{
    // §7.1: prefill transitions from full-CPU to full-GPU around
    // B*L ~ 850.
    CostModel cm(hw::sprA100(), model::opt175b(), {});
    const auto bl_star = prefillCrossover(cm);
    EXPECT_GT(bl_star, 250);
    EXPECT_LT(bl_star, 1300);
}

TEST(CalibrationFig9, DecodePolicyIndependentOfContext)
{
    // §7.1: the decode policy depends on B, not L, so it stays fixed
    // while output tokens are generated.
    CostModel cm(hw::sprA100(), model::opt175b(), {});
    PolicyOptimizer opt(cm);
    for (std::int64_t b : {1, 64, 1600}) {
        Policy first;
        bool have_first = false;
        for (std::int64_t l : {64, 128, 256, 512, 1024}) {
            Workload w{Stage::Decode, b, l};
            const auto p = opt.optimize(w).policy;
            if (!have_first) {
                first = p;
                have_first = true;
            }
            EXPECT_EQ(p, first) << "B=" << b << " L=" << l;
        }
    }
}

TEST(CalibrationTable4, LiaLatenciesWithinFactorTwoOfPaper)
{
    // Table 4 "All optimizations": 5.05 s / 24.0 s / 291 s for
    // B = 1 / 64 / 900 (OPT-30B, L_in=256, L_out=32, SPR-A100).
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    auto lia = baselines::liaEngine(sys, m);
    const double paper[] = {5.05, 24.0, 291.0};
    const std::int64_t batches[] = {1, 64, 900};
    for (int i = 0; i < 3; ++i) {
        const auto est = lia.estimate({batches[i], 256, 32});
        EXPECT_GT(est.latency(), paper[i] / 2.2) << "B=" << batches[i];
        EXPECT_LT(est.latency(), paper[i] * 2.2) << "B=" << batches[i];
    }
}

TEST(CalibrationTable5, IpexLatenciesWithinFactorTwoOfPaper)
{
    // Table 5 IPEX CPU times: 10.2 / 75.7 / 1216.5 s.
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    auto ipex = baselines::ipexEngine(sys, m);
    const double paper[] = {10.2, 75.7, 1216.5};
    const std::int64_t batches[] = {1, 64, 900};
    for (int i = 0; i < 3; ++i) {
        const auto est = ipex.estimate({batches[i], 256, 32});
        EXPECT_GT(est.latency(), paper[i] / 2.2) << "B=" << batches[i];
        EXPECT_LT(est.latency(), paper[i] * 2.2) << "B=" << batches[i];
    }
}

TEST(CalibrationTable4, OptimizationOneMattersMostAtBatchOne)
{
    // Table 4: no-Opt-1 doubles B=1 latency (5.05 -> 10.09) but barely
    // moves B=900 (291 -> 297).
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    auto full = baselines::liaEngineAblated(sys, m, true, true, true);
    auto no_opt1 = baselines::liaEngineAblated(sys, m, false, true, true);
    const double gain_b1 = no_opt1.estimate({1, 256, 32}).latency() /
                           full.estimate({1, 256, 32}).latency();
    const double gain_b900 =
        no_opt1.estimate({900, 256, 32}).latency() /
        full.estimate({900, 256, 32}).latency();
    EXPECT_GT(gain_b1, 1.3);
    EXPECT_LT(gain_b900, 1.15);
}

TEST(CalibrationTable4, OptimizationTwoMattersMostAtLargeBatch)
{
    // Table 4: no-Opt-2 is ~1.5x at B=900 (291 -> 444) but a no-op at
    // B=1 (5.05 -> 5.05).
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    auto full = baselines::liaEngineAblated(sys, m, true, true, true);
    auto no_opt2 = baselines::liaEngineAblated(sys, m, true, false, true);
    const double gain_b900 =
        no_opt2.estimate({900, 256, 32}).latency() /
        full.estimate({900, 256, 32}).latency();
    const double gain_b1 = no_opt2.estimate({1, 256, 32}).latency() /
                           full.estimate({1, 256, 32}).latency();
    EXPECT_GT(gain_b900, 1.2);
    EXPECT_LT(gain_b1, 1.1);
}

TEST(CalibrationTable4, FlexGenPolicyLosesBigAtSmallBatch)
{
    // Table 4: swapping in FlexGen's fixed policy costs 6.2x at B=1
    // and 3.5x at B=64, but nothing at B=900 (same policy there).
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    auto lia = baselines::liaEngineAblated(sys, m, true, true, true);
    auto fg_policy =
        baselines::liaEngineAblated(sys, m, true, true, false);
    const double gain_b1 = fg_policy.estimate({1, 256, 32}).latency() /
                           lia.estimate({1, 256, 32}).latency();
    const double gain_b900 =
        fg_policy.estimate({900, 256, 32}).latency() /
        lia.estimate({900, 256, 32}).latency();
    EXPECT_GT(gain_b1, 2.0);
    EXPECT_LT(gain_b900, 1.3);
}

} // namespace
