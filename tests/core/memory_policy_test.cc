/**
 * @file
 * Tests for the §6 CXL memory-offloading policy.
 */

#include <gtest/gtest.h>

#include "core/memory_policy.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

namespace {

using namespace lia;
using namespace lia::core;

class MemoryPolicyTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::withCxl(hw::sprA100());
    model::ModelConfig m = model::opt30b();
};

TEST_F(MemoryPolicyTest, LargeBatchMovesParamsToCxl)
{
    // Decode policy (0,1,1,0,0,0): every parameter sublayer on GPU.
    const auto placement = planMemoryPlacement(
        sys, m, 900, 32, 32, Policy::attentionOnCpu());
    EXPECT_EQ(placement.paramTier, HostTier::Cxl);
    EXPECT_EQ(placement.kvTier, HostTier::Ddr);
    EXPECT_TRUE(placement.feasible);
    EXPECT_GT(placement.paramCxlFraction, 0.9);
}

TEST_F(MemoryPolicyTest, OffloadedFractionMatchesTable3)
{
    // Table 3: B=900, L_in=32, L_out=32 offloads ~43% of all bytes.
    const auto placement = planMemoryPlacement(
        sys, m, 900, 32, 32, Policy::attentionOnCpu());
    EXPECT_NEAR(placement.offloadedFraction(), 0.431, 0.06);
}

TEST_F(MemoryPolicyTest, OffloadedFractionShrinksWithLongerOutputs)
{
    // Table 3's trend: larger L_out grows the KV share, diluting the
    // parameter fraction (43% -> 14% as L_out goes 32 -> 256).
    double prev = 1.0;
    for (std::int64_t l_out : {32, 64, 128, 256}) {
        const auto placement = planMemoryPlacement(
            sys, m, 900, 32, l_out, Policy::attentionOnCpu());
        EXPECT_LT(placement.offloadedFraction(), prev);
        prev = placement.offloadedFraction();
    }
    EXPECT_NEAR(prev, 0.144, 0.05);  // L_out = 256 row of Table 3
}

TEST_F(MemoryPolicyTest, CpuParamPoliciesKeepParamsInDdr)
{
    // Observation-2 guard: full-CPU decode would read weights through
    // the pool, so the planner refuses to offload.
    const auto placement =
        planMemoryPlacement(sys, m, 16, 32, 32, Policy::fullCpu());
    EXPECT_EQ(placement.paramTier, HostTier::Ddr);
    EXPECT_DOUBLE_EQ(placement.cxlBytes, 0.0);
}

TEST_F(MemoryPolicyTest, NoCxlPoolMeansDdrOnly)
{
    const auto placement = planMemoryPlacement(
        hw::sprA100(), m, 900, 32, 32, Policy::attentionOnCpu());
    EXPECT_EQ(placement.paramTier, HostTier::Ddr);
    EXPECT_NE(placement.note.find("no CXL"), std::string::npos);
}

TEST_F(MemoryPolicyTest, DdrReliefEqualsOffloadedParams)
{
    const auto with_cxl = planMemoryPlacement(
        sys, m, 900, 32, 32, Policy::attentionOnCpu());
    const auto without = planMemoryPlacement(
        hw::sprA100(), m, 900, 32, 32, Policy::attentionOnCpu());
    EXPECT_NEAR(without.ddrBytes - with_cxl.ddrBytes,
                with_cxl.cxlBytes, 1.0);
}

TEST_F(MemoryPolicyTest, PartialOffloadWhenParamsExceedPool)
{
    // OPT-175B's ~350 GB exceeds the 256 GB pool: offload saturates.
    const auto big = model::opt175b();
    const auto placement = planMemoryPlacement(
        sys, big, 64, 32, 32, Policy::attentionOnCpu());
    EXPECT_LT(placement.paramCxlFraction, 1.0);
    EXPECT_NEAR(placement.cxlBytes, sys.cxl.totalCapacity(), 1e9);
}

TEST_F(MemoryPolicyTest, InfeasibleWhenDdrOverflows)
{
    // A batch whose KV cache alone exceeds 512 GB DDR.
    const auto placement = planMemoryPlacement(
        sys, m, 4000, 1024, 256, Policy::attentionOnCpu());
    EXPECT_FALSE(placement.feasible);
}

TEST_F(MemoryPolicyTest, ObliviousPlacementPutsKvInCxl)
{
    const auto placement =
        obliviousCxlPlacement(sys, m, 64, 256, 32);
    EXPECT_EQ(placement.paramTier, HostTier::Cxl);
    EXPECT_EQ(placement.kvTier, HostTier::Cxl);
}

TEST_F(MemoryPolicyTest, ApplyPlacementCopiesTiers)
{
    MemoryPlacement placement;
    placement.paramTier = HostTier::Cxl;
    placement.kvTier = HostTier::Ddr;
    CostModelOptions opts = applyPlacement({}, placement);
    EXPECT_EQ(opts.paramTier, HostTier::Cxl);
    EXPECT_EQ(opts.kvTier, HostTier::Ddr);
}

TEST_F(MemoryPolicyTest, HostTierNames)
{
    EXPECT_STREQ(toString(HostTier::Ddr), "DDR");
    EXPECT_STREQ(toString(HostTier::Cxl), "CXL");
}

} // namespace
