/**
 * @file
 * Tests for SLO burn-rate monitoring (DESIGN.md §13): hand-fed
 * burn-rate arithmetic, window pruning, pressure as the worst burn
 * rate, untracked signals, deterministic JSON/Prometheus rendering,
 * and the identity guarantee — a run with a monitor attached is
 * bit-identical to one without, with the only trace difference being
 * the opt-in `slo_pressure` counter.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "serve/engine.hh"
#include "serve/prom.hh"
#include "serve/slo_monitor.hh"
#include "support/serving_checks.hh"

namespace {

using namespace lia;
using serve::SloMonitor;
using Signal = serve::SloMonitor::Signal;

serve::SloMonitorConfig
monitorConfig()
{
    serve::SloMonitorConfig cfg;
    cfg.targets.ttft = 2.0;
    cfg.targets.tbt = 0.5;
    cfg.targets.e2e = 10.0;
    cfg.windows = {5.0, 60.0};
    cfg.errorBudget = 0.1;
    return cfg;
}

TEST(SloMonitorTest, BurnRateIsViolatingFractionOverBudget)
{
    SloMonitor monitor(monitorConfig());
    // 4 TTFT samples in the last 5 s, one violating (3 s > 2 s
    // target): fraction 0.25, budget 0.1 => burn rate 2.5.
    monitor.onTtft(10.0, 1.0);
    monitor.onTtft(11.0, 1.5);
    monitor.onTtft(12.0, 3.0);
    monitor.onTtft(13.0, 0.5);
    EXPECT_EQ(monitor.samples(Signal::Ttft), 4u);
    EXPECT_EQ(monitor.violations(Signal::Ttft), 1u);
    EXPECT_DOUBLE_EQ(monitor.burnRate(Signal::Ttft, 13.0, 5.0), 2.5);
    EXPECT_DOUBLE_EQ(monitor.burnRate(Signal::Ttft, 13.0, 60.0), 2.5);
}

TEST(SloMonitorTest, WindowsForgetOldViolations)
{
    SloMonitor monitor(monitorConfig());
    monitor.onTtft(0.0, 5.0); // violation at t=0
    monitor.onTtft(30.0, 1.0);
    monitor.onTtft(31.0, 1.0);
    // The 5 s window ending at 31 holds only the two compliant
    // samples; the 60 s window still sees the violation (1/3 / 0.1).
    EXPECT_DOUBLE_EQ(monitor.burnRate(Signal::Ttft, 31.0, 5.0), 0.0);
    EXPECT_NEAR(monitor.burnRate(Signal::Ttft, 31.0, 60.0),
                (1.0 / 3.0) / 0.1, 1e-12);
    // Whole-run totals never forget.
    EXPECT_EQ(monitor.violations(Signal::Ttft), 1u);
    // Far beyond every window the burn rate drains to zero...
    EXPECT_DOUBLE_EQ(monitor.burnRate(Signal::Ttft, 500.0, 60.0),
                     0.0);
    // ...and the histogram still holds every sample.
    EXPECT_EQ(monitor.histogram(Signal::Ttft).count(), 3u);
}

TEST(SloMonitorTest, PressureIsTheWorstBurnRate)
{
    SloMonitor monitor(monitorConfig());
    monitor.onTtft(10.0, 1.0);      // compliant
    monitor.onTokenGap(10.0, 2.0);  // violating (> 0.5)
    monitor.onComplete(10.0, 4.0);  // compliant
    // Token-gap: 1/1 violating over budget 0.1 => burn rate 10.
    EXPECT_DOUBLE_EQ(monitor.burnRate(Signal::TokenGap, 10.0, 5.0),
                     10.0);
    EXPECT_DOUBLE_EQ(monitor.pressure(10.0), 10.0);
}

TEST(SloMonitorTest, UntrackedSignalsStayAtZero)
{
    serve::SloMonitorConfig cfg = monitorConfig();
    cfg.targets.tbt = 0.0; // token-gap untracked
    SloMonitor monitor(cfg);
    monitor.onTokenGap(1.0, 100.0);
    EXPECT_EQ(monitor.samples(Signal::TokenGap), 0u);
    EXPECT_EQ(monitor.violations(Signal::TokenGap), 0u);
    EXPECT_DOUBLE_EQ(monitor.burnRate(Signal::TokenGap, 1.0, 5.0),
                     0.0);
    monitor.onTtft(1.0, 5.0);
    // Pressure only reflects tracked signals.
    EXPECT_DOUBLE_EQ(monitor.pressure(1.0), 10.0);
}

TEST(SloMonitorTest, JsonIsDeterministicAndComplete)
{
    auto build = [] {
        SloMonitor monitor(monitorConfig());
        monitor.onTtft(1.0, 3.0);
        monitor.onTokenGap(1.5, 0.25);
        monitor.onComplete(2.0, 12.0);
        return monitor.toJson(2.0);
    };
    const std::string json = build();
    EXPECT_EQ(json, build());
    EXPECT_NE(json.find("\"pressure\":"), std::string::npos);
    EXPECT_NE(json.find("\"ttft\":{"), std::string::npos);
    EXPECT_NE(json.find("\"token_gap\":{"), std::string::npos);
    EXPECT_NE(json.find("\"e2e\":{"), std::string::npos);
    EXPECT_NE(json.find("\"burn_rates\":{\"5\":"), std::string::npos);
    EXPECT_NE(json.find("\"hist\":{"), std::string::npos);
}

TEST(SloMonitorTest, PromExpositionCarriesBurnRatesAndPressure)
{
    SloMonitor monitor(monitorConfig());
    monitor.onTtft(1.0, 3.0);
    std::ostringstream os;
    monitor.writeProm(os, 1.0);
    const std::string text = os.str();
    EXPECT_NE(text.find("lia_slo_ttft_seconds_bucket{"),
              std::string::npos);
    EXPECT_NE(text.find(
                  "lia_slo_burn_rate{signal=\"ttft\",window_s=\"5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("lia_slo_pressure "), std::string::npos);
}

// --- Engine integration --------------------------------------------

serve::Config
monitoredConfig()
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond = 10.0 / 60.0;
    cfg.requests = 60;
    cfg.seed = 11;
    cfg.trace = trace::TraceKind::Conversation;
    cfg.policy = serve::SchedulerPolicy::Preemptive;
    cfg.maxBatch = 16;
    cfg.kvBudgetCapBytes = 4e9;
    cfg.prefillChunkTokens = 256;
    return cfg;
}

serve::Result
runWith(const serve::Config &cfg)
{
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

TEST(SloMonitorEngineTest, MonitoringNeverChangesResults)
{
    serve::SloMonitorConfig mon_cfg;
    mon_cfg.targets = serve::SloTargets{20.0, 0.5, 180.0};
    serve::SloMonitor monitor(mon_cfg);

    serve::Config plain = monitoredConfig();
    serve::Config monitored = monitoredConfig();
    monitored.sloMonitor = &monitor;
    const auto a = runWith(plain);
    const auto b = runWith(monitored);
    test::expectIdenticalRuns(a, b);

    // The monitor really observed the run.
    EXPECT_EQ(monitor.samples(Signal::Ttft), a.metrics.completed);
    EXPECT_EQ(monitor.samples(Signal::E2e), a.metrics.completed);
    EXPECT_GT(monitor.samples(Signal::TokenGap), 0u);
}

TEST(SloMonitorEngineTest, PressureCounterAppearsOnlyWhenMonitored)
{
    auto counterNames = [](const obs::ChromeTraceWriter &trace) {
        std::set<std::string> names;
        for (const auto &event : trace.events())
            if (event.phase == 'C')
                names.insert(event.name);
        return names;
    };

    obs::ChromeTraceWriter plain_trace;
    serve::Config plain = monitoredConfig();
    plain.sink = &plain_trace;
    runWith(plain);
    EXPECT_EQ(counterNames(plain_trace).count("slo_pressure"), 0u);

    serve::SloMonitorConfig mon_cfg;
    mon_cfg.targets = serve::SloTargets{20.0, 0.5, 180.0};
    serve::SloMonitor monitor(mon_cfg);
    obs::ChromeTraceWriter monitored_trace;
    serve::Config monitored = monitoredConfig();
    monitored.sink = &monitored_trace;
    monitored.sloMonitor = &monitor;
    runWith(monitored);
    EXPECT_EQ(counterNames(monitored_trace).count("slo_pressure"),
              1u);
}

TEST(SloMonitorEngineTest, PrometheusFileCoversEngineAndMonitor)
{
    serve::SloMonitorConfig mon_cfg;
    mon_cfg.targets = serve::SloTargets{20.0, 0.5, 180.0};
    serve::SloMonitor monitor(mon_cfg);
    serve::Config cfg = monitoredConfig();
    cfg.sloMonitor = &monitor;
    const auto result = runWith(cfg);

    std::ostringstream os;
    serve::writePrometheus(os, result.metrics, &monitor,
                           result.metrics.makespan);
    const std::string text = os.str();
    EXPECT_NE(text.find("lia_ttft_seconds_bucket{"),
              std::string::npos);
    EXPECT_NE(text.find("lia_requests_completed_total "),
              std::string::npos);
    EXPECT_NE(text.find("lia_slo_pressure "), std::string::npos);
    // Engine histogram count agrees with the metrics counter.
    EXPECT_NE(text.find("lia_response_seconds_count " +
                        std::to_string(result.metrics.completed)),
              std::string::npos);
}

} // namespace
