/**
 * @file
 * Property-based fuzzer for the serving scheduler stack.
 *
 * Drives randomized scenarios (arrival rate, trace family, batch
 * ceiling, prefill chunking, admission watermark, KV budget cap, seed)
 * through all four scheduling policies and asserts the invariants that
 * must hold regardless of configuration:
 *
 *  - the KV reservation never exceeds the budget (peak and occupancy);
 *  - the byte account balances to zero when the run drains, with every
 *    swap-out matched by a swap-in;
 *  - every request reaches a terminal state — preempted or swapped
 *    work eventually completes (or was shed before admission);
 *  - equal seeds produce bit-identical runs.
 *
 * Scenario count scales with the LIA_PROPERTY_SCENARIOS environment
 * variable (total scenarios = configurations x 4 policies; the nightly
 * CI job raises it well past the default ~1k). Mid-run invariants
 * (pool exclusivity, non-negative balances) are LIA_ASSERT-enforced
 * inside the engine, so any violation aborts the fuzzer loudly.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <vector>

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/engine.hh"
#include "support/differential.hh"
#include "support/serving_checks.hh"

namespace {

using namespace lia;
using serve::RequestState;
using serve::SchedulerPolicy;

constexpr SchedulerPolicy kPolicies[] = {
    SchedulerPolicy::StaticFifo,
    SchedulerPolicy::Continuous,
    SchedulerPolicy::SloAware,
    SchedulerPolicy::Preemptive,
};

/** Scenario configurations to fuzz (each runs all four policies). */
std::size_t
configurations()
{
    if (const char *env = std::getenv("LIA_PROPERTY_SCENARIOS")) {
        const long scenarios = std::atol(env);
        if (scenarios > 0)
            return (static_cast<std::size_t>(scenarios) + 3) / 4;
    }
    return 260;  // 1040 scenarios
}

/**
 * Fuzz both the CXL deployment (swap-to-CXL available) and the plain
 * DDR one (no swap pool, so every preemption must take the
 * evict-and-recompute exit).
 */
const hw::SystemConfig &
system(bool cxl)
{
    static const hw::SystemConfig with = hw::withCxl(hw::sprA100());
    static const hw::SystemConfig without = hw::sprA100();
    return cxl ? with : without;
}

/**
 * One analytical engine + cost cache per system, shared by every
 * scenario: the fuzzer prices thousands of runs of the same
 * (system, model) pair, so calibrating per run would dominate the
 * test. Must mirror the pricing preset ServingEngine builds
 * internally.
 */
std::shared_ptr<const serve::IterationCostCache>
sharedCosts(bool cxl)
{
    static const auto make = [](bool has_cxl) {
        core::EngineConfig cfg;
        cfg.costOptions.executionAwareObjective = true;
        cfg.autoMemoryPolicy = has_cxl;  // cxlSpill needs a CXL pool
        cfg.specDraftModel = model::draftModelConfig(model::opt30b());
        static std::vector<std::unique_ptr<core::EngineModel>> keep;
        keep.push_back(std::make_unique<core::EngineModel>(
            system(has_cxl), model::opt30b(), cfg));
        return std::make_shared<const serve::IterationCostCache>(
            *keep.back(), 32);
    };
    static const auto with = make(true);
    static const auto without = make(false);
    return cxl ? with : without;
}

serve::Config
randomConfig(std::mt19937_64 &rng)
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond =
        std::uniform_real_distribution<double>(0.05, 4.0)(rng);
    cfg.requests =
        std::uniform_int_distribution<std::size_t>(8, 48)(rng);
    cfg.seed = std::uniform_int_distribution<std::uint64_t>(
        1, 1u << 30)(rng);

    const trace::TraceKind traces[] = {trace::TraceKind::Code,
                                       trace::TraceKind::Conversation,
                                       trace::TraceKind::Mixed};
    cfg.trace = traces[std::uniform_int_distribution<int>(0, 2)(rng)];

    const std::int64_t contexts[] = {512, 1024, 2048};
    cfg.maxContext =
        contexts[std::uniform_int_distribution<int>(0, 2)(rng)];

    const std::int64_t batches[] = {2, 4, 8, 16, 32};
    cfg.maxBatch =
        batches[std::uniform_int_distribution<int>(0, 4)(rng)];

    const std::int64_t chunks[] = {0, 64, 256};
    cfg.prefillChunkTokens =
        chunks[std::uniform_int_distribution<int>(0, 2)(rng)];

    const double watermarks[] = {0.0, 0.1, 0.3};
    cfg.admissionWatermark =
        watermarks[std::uniform_int_distribution<int>(0, 2)(rng)];

    // Caps small enough that decode growth genuinely breaches the
    // budget (forcing preemption / blocked admission), mixed with the
    // uncapped default; the smallest also rejects wide requests
    // outright at arrival (a 2048-token horizon is ~2.8 GB of KV).
    const double caps[] = {0.0, 2e9, 4e9, 8e9, 16e9};
    cfg.kvBudgetCapBytes =
        caps[std::uniform_int_distribution<int>(0, 4)(rng)];

    // SLO targets sometimes in force (e2e stays off: the capacity
    // planner would re-run per scenario and dominate the fuzzer).
    if (std::uniform_int_distribution<int>(0, 1)(rng)) {
        cfg.slo.ttft =
            std::uniform_real_distribution<double>(1.0, 20.0)(rng);
        cfg.slo.tbt =
            std::uniform_real_distribution<double>(0.05, 0.5)(rng);
    }

    // Speculative decoding on a third of the fuzz space: the builtin
    // acceptance oracle makes tokens-per-step variable but a pure
    // function of the seed, so the budget / drain / termination
    // invariants and the bit-identity re-runs must all keep holding.
    if (std::uniform_int_distribution<int>(0, 2)(rng) == 0) {
        cfg.spec.enabled = true;
        const std::int64_t spec_ks[] = {1, 2, 4, 8};
        cfg.spec.draftTokens =
            spec_ks[std::uniform_int_distribution<int>(0, 3)(rng)];
        const double accept_rates[] = {0.3, 0.8, 1.0};
        cfg.spec.acceptRate = accept_rates[
            std::uniform_int_distribution<int>(0, 2)(rng)];
    }
    return cfg;
}

serve::Result
run(const serve::Config &cfg, bool cxl)
{
    serve::ServingEngine engine(system(cxl), model::opt30b(), cfg,
                                sharedCosts(cxl));
    return engine.run();
}

// The invariant and bit-identity checkers are shared with the
// differential harness (tests/support/serving_checks.hh). The drain
// balance is a hard ASSERT there: a leaked byte account fails fast.
using test::checkServingInvariants;
using test::expectIdenticalRuns;

TEST(SchedulerPropertyTest, RandomizedScenariosHoldInvariants)
{
    std::mt19937_64 rng(0xC0FFEE);
    const std::size_t configs = configurations();
    std::size_t scenarios = 0;

    for (std::size_t c = 0; c < configs; ++c) {
        serve::Config cfg = randomConfig(rng);
        const bool cxl =
            std::uniform_int_distribution<int>(0, 3)(rng) > 0;
        cfg.cxlSpill = cxl;
        for (SchedulerPolicy policy : kPolicies) {
            cfg.policy = policy;
            SCOPED_TRACE(testing::Message()
                         << "config " << c << " policy "
                         << static_cast<int>(policy) << " seed "
                         << cfg.seed << " rate "
                         << cfg.arrivalRatePerSecond << " cap "
                         << cfg.kvBudgetCapBytes << " chunk "
                         << cfg.prefillChunkTokens << " cxl " << cxl);
            const serve::Result result = run(cfg, cxl);
            checkServingInvariants(result, cfg);
            // Determinism: the preemptive path re-runs every config
            // (it is the new machinery); legacy policies rotate.
            if (policy == SchedulerPolicy::Preemptive ||
                c % 4 == static_cast<std::size_t>(policy))
                expectIdenticalRuns(result, run(cfg, cxl));
            ++scenarios;
            if (::testing::Test::HasFailure())
                FAIL() << "invariant violated after " << scenarios
                       << " scenarios";
        }
    }
    RecordProperty("scenarios", static_cast<int>(scenarios));
    EXPECT_GE(scenarios, 1000u);
}

/**
 * The fuzzer must actually exercise the machinery it checks: across
 * the default scenario set, preemption, both victim exits, swap-ins,
 * chunked prefill, and capacity rejection all occur.
 */
TEST(SchedulerPropertyTest, ScenarioSetExercisesThePreemptionMachinery)
{
    std::mt19937_64 rng(0xC0FFEE);
    const std::size_t configs = std::min<std::size_t>(
        configurations(), 64);
    std::size_t preemptions = 0, swapOuts = 0, recomputes = 0;
    std::size_t swapIns = 0, chunks = 0, rejected = 0;
    std::size_t specSteps = 0;
    std::int64_t specAccepted = 0;
    for (std::size_t c = 0; c < configs; ++c) {
        serve::Config cfg = randomConfig(rng);
        const bool cxl =
            std::uniform_int_distribution<int>(0, 3)(rng) > 0;
        cfg.cxlSpill = cxl;
        cfg.policy = SchedulerPolicy::Preemptive;
        const serve::Result result = run(cfg, cxl);
        preemptions += result.metrics.preemptions;
        swapOuts += result.metrics.swapOuts;
        recomputes += result.metrics.recomputes;
        swapIns += result.metrics.swapIns;
        chunks += result.metrics.prefillChunks;
        rejected += result.metrics.rejectedCapacity;
        specSteps += result.metrics.specSteps;
        specAccepted += result.metrics.specAcceptedTokens;
    }
    EXPECT_GT(preemptions, 0u);
    EXPECT_GT(swapOuts, 0u);
    EXPECT_GT(recomputes, 0u);
    EXPECT_GT(swapIns, 0u);
    EXPECT_GT(chunks, 0u);
    EXPECT_GT(rejected, 0u);
    // Spec-enabled configs ride the same sweep: variable-token decode
    // steps genuinely fire (and accept drafts) under preemption.
    EXPECT_GT(specSteps, 0u);
    EXPECT_GT(specAccepted, 0);
}

/**
 * Runtime-backed mode: a slice of the fuzz space re-runs with a
 * RuntimeBackend executing every iteration plan on the functional
 * runtime (tiny model, so real forwards stay fast). Each scenario
 * asserts the four run invariants above plus output-token continuity
 * across preemption — greedy streams bit-identical to uninterrupted
 * generation. Scenario count follows LIA_PROPERTY_SCENARIOS / 16 so
 * the nightly job deepens this mode alongside the analytic sweep.
 */
TEST(SchedulerPropertyTest, RuntimeBackedScenariosStayInLockstep)
{
    std::mt19937_64 rng(0xBACCED);
    const std::size_t scenarios = std::max<std::size_t>(
        16, (configurations() * 4) / 16);
    test::DifferentialOutcome outcome;

    for (std::size_t s = 0; s < scenarios; ++s) {
        const bool cxl =
            std::uniform_int_distribution<int>(0, 3)(rng) > 0;
        const double step = test::tinySharedCosts(cxl)->time(
            model::Stage::Decode, 4, 64);
        serve::Config cfg = test::randomTinyConfig(rng, step);
        cfg.cxlSpill = cxl;
        cfg.policy = kPolicies[s % 4];
        SCOPED_TRACE(testing::Message()
                     << "scenario " << s << " policy "
                     << static_cast<int>(cfg.policy) << " seed "
                     << cfg.seed << " cap " << cfg.kvBudgetCapBytes
                     << " cxl " << cxl);
        test::runDifferentialScenario(cfg, cxl, outcome);
        if (::testing::Test::HasFailure())
            FAIL() << "runtime-backed divergence after " << s + 1
                   << " scenarios";
    }
    EXPECT_EQ(outcome.scenarios, scenarios);
    EXPECT_GT(outcome.continuityChecked, 0u);
}

} // namespace
