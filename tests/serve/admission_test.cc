/**
 * @file
 * Tests for the KV-footprint admission controller.
 */

#include <gtest/gtest.h>

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/admission.hh"

namespace {

using namespace lia;
using serve::AdmissionController;
using serve::Request;

Request
makeRequest(std::int64_t l_in, std::int64_t l_out)
{
    Request request;
    request.lIn = l_in;
    request.lOut = l_out;
    return request;
}

TEST(AdmissionTest, CxlSpillGrowsTheKvBudget)
{
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    serve::Config spill, plain;
    plain.cxlSpill = false;

    AdmissionController with(sys, m, spill);
    AdmissionController without(sys, m, plain);
    EXPECT_TRUE(with.paramsInCxl());
    EXPECT_FALSE(without.paramsInCxl());
    EXPECT_GT(with.kvBudgetBytes(), without.kvBudgetBytes());

    // The growth is exactly the DDR the parameters vacated.
    EXPECT_NEAR(with.kvBudgetBytes() - without.kvBudgetBytes(),
                m.totalParamBytes(),
                0.02 * m.totalParamBytes());
}

TEST(AdmissionTest, NoCxlPoolMeansNoSpill)
{
    const auto sys = hw::sprA100();  // DDR only
    const auto m = model::opt30b();
    serve::Config cfg;  // cxlSpill defaults to true
    AdmissionController admission(sys, m, cfg);
    EXPECT_FALSE(admission.paramsInCxl());
}

TEST(AdmissionTest, RequestBytesScaleWithTheFullHorizon)
{
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    AdmissionController admission(sys, m, serve::Config{});

    const auto small = makeRequest(50, 50);
    const auto large = makeRequest(100, 100);
    EXPECT_GT(admission.requestKvBytes(small), 0.0);
    EXPECT_DOUBLE_EQ(admission.requestKvBytes(large),
                     2.0 * admission.requestKvBytes(small));
    // Output tokens count as much as prompt tokens: the reservation
    // is for the request's final context, not its current one.
    EXPECT_DOUBLE_EQ(admission.requestKvBytes(makeRequest(100, 0)),
                     admission.requestKvBytes(makeRequest(0, 100)));
}

TEST(AdmissionTest, ReserveAndReleaseBalance)
{
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    AdmissionController admission(sys, m, serve::Config{});

    auto a = makeRequest(256, 64);
    auto b = makeRequest(1024, 256);
    EXPECT_DOUBLE_EQ(admission.reservedBytes(), 0.0);
    admission.reserve(a);
    admission.reserve(b);
    EXPECT_GT(a.kvReservedBytes, 0.0);
    EXPECT_DOUBLE_EQ(admission.reservedBytes(),
                     admission.requestKvBytes(a) +
                         admission.requestKvBytes(b));
    admission.release(a);
    EXPECT_DOUBLE_EQ(a.kvReservedBytes, 0.0);
    EXPECT_DOUBLE_EQ(admission.reservedBytes(),
                     admission.requestKvBytes(b));
    admission.release(b);
    EXPECT_DOUBLE_EQ(admission.reservedBytes(), 0.0);
}

TEST(AdmissionTest, CanAdmitHonoursTheBudget)
{
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    serve::Config cfg;
    AdmissionController admission(sys, m, cfg);

    // Fill the pool with identical requests until one no longer fits.
    std::vector<Request> held;
    auto probe = makeRequest(1024, 1024);
    ASSERT_TRUE(admission.fitsAlone(probe));
    while (admission.canAdmit(probe)) {
        held.push_back(probe);
        admission.reserve(held.back());
        ASSERT_LT(held.size(), 100'000u) << "budget never exhausted";
    }
    EXPECT_GT(held.size(), 0u);
    EXPECT_LE(admission.reservedBytes(), admission.kvBudgetBytes());
    EXPECT_GT(admission.reservedBytes() +
                  admission.requestKvBytes(probe),
              admission.kvBudgetBytes());
    // Still admissible in principle — just not right now.
    EXPECT_TRUE(admission.fitsAlone(probe));
}

TEST(AdmissionTest, OversizedRequestNeverFits)
{
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    AdmissionController admission(sys, m, serve::Config{});
    const auto monster = makeRequest(1'000'000'000, 1'000'000'000);
    EXPECT_FALSE(admission.fitsAlone(monster));
    EXPECT_FALSE(admission.canAdmit(monster));
}

} // namespace
