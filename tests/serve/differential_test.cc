/**
 * @file
 * Differential test: analytical-only vs runtime-backed serving.
 *
 * Runs randomized request streams through the serving engine twice —
 * once purely analytically, once with a RuntimeBackend executing every
 * committed iteration plan on the functional runtime stack — and
 * asserts the two paths agree (see tests/support/differential.hh for
 * the full property list). The per-iteration KV-lockstep invariants
 * are LIA_ASSERT-enforced inside the backend, so any divergence aborts
 * the run at the first bad iteration with the offending request named.
 *
 * Defaults to 500+ scenarios; LIA_DIFFERENTIAL_SCENARIOS scales the
 * sweep (the nightly CI job raises it).
 */

#include <gtest/gtest.h>

#include <random>

#include "serve/config.hh"
#include "support/differential.hh"

namespace {

using namespace lia;
using serve::SchedulerPolicy;

constexpr SchedulerPolicy kPolicies[] = {
    SchedulerPolicy::StaticFifo,
    SchedulerPolicy::Continuous,
    SchedulerPolicy::SloAware,
    SchedulerPolicy::Preemptive,
};

TEST(DifferentialTest, AnalyticalAndRuntimeBackedPathsAgree)
{
    const std::size_t scenarios =
        test::envScenarioCount("LIA_DIFFERENTIAL_SCENARIOS", 500);
    std::mt19937_64 rng(0xD1FFBEEF);
    test::DifferentialOutcome outcome;

    for (std::size_t s = 0; s < scenarios; ++s) {
        const bool cxl =
            std::uniform_int_distribution<int>(0, 3)(rng) > 0;
        const double step = test::tinySharedCosts(cxl)->time(
            model::Stage::Decode, 4, 64);
        serve::Config cfg = test::randomTinyConfig(rng, step);
        cfg.cxlSpill = cxl;
        // Preemption is the differential surface of interest: run the
        // preemptive policy every other scenario, the rest rotate.
        cfg.policy = s % 2 == 0
                         ? SchedulerPolicy::Preemptive
                         : kPolicies[(s / 2) % 4];
        SCOPED_TRACE(testing::Message()
                     << "scenario " << s << " policy "
                     << serve::toString(cfg.policy) << " seed "
                     << cfg.seed << " cap " << cfg.kvBudgetCapBytes
                     << " chunk " << cfg.prefillChunkTokens
                     << " maxContext " << cfg.maxContext << " rate "
                     << cfg.arrivalRatePerSecond << " cxl " << cxl);
        test::runDifferentialScenario(cfg, cxl, outcome);
        if (::testing::Test::HasFailure())
            FAIL() << "differential divergence after " << s + 1
                   << " scenarios";
    }

    RecordProperty("scenarios", static_cast<int>(outcome.scenarios));
    EXPECT_GE(outcome.scenarios, scenarios);
}

/**
 * The sweep must exercise the machinery it claims to verify: across
 * the default scenario set both victim exits fire, swapped caches come
 * back, prompts chunk, capacity rejects, and preempted completions are
 * continuity-checked against uninterrupted references.
 */
TEST(DifferentialTest, SweepExercisesPreemptionAndContinuityChecks)
{
    const std::size_t scenarios = test::envScenarioCount(
        "LIA_DIFFERENTIAL_SCENARIOS", 500);
    std::mt19937_64 rng(0xD1FFBEEF);
    test::DifferentialOutcome outcome;

    for (std::size_t s = 0; s < scenarios && s < 200; ++s) {
        const bool cxl =
            std::uniform_int_distribution<int>(0, 3)(rng) > 0;
        const double step = test::tinySharedCosts(cxl)->time(
            model::Stage::Decode, 4, 64);
        serve::Config cfg = test::randomTinyConfig(rng, step);
        cfg.cxlSpill = cxl;
        cfg.policy = SchedulerPolicy::Preemptive;
        SCOPED_TRACE(testing::Message() << "scenario " << s << " seed "
                                        << cfg.seed);
        test::runDifferentialScenario(cfg, cxl, outcome);
    }

    EXPECT_GT(outcome.preemptions, 0u);
    EXPECT_GT(outcome.recomputes, 0u);
    EXPECT_GT(outcome.swapOuts, 0u);
    EXPECT_GT(outcome.swapIns, 0u);
    EXPECT_GT(outcome.prefillChunks, 0u);
    EXPECT_GT(outcome.rejectedCapacity, 0u);
    EXPECT_GT(outcome.continuityChecked, 0u);
    EXPECT_GT(outcome.preemptedContinuityChecked, 0u);
    // Prefix caching rides the same sweep: Zipfian pools make shared
    // prefixes, so hits, inserts, and reclaim all genuinely fire (and
    // every hit was digest-verified inside the scenario runner).
    EXPECT_GT(outcome.prefixHits, 0u);
    EXPECT_GT(outcome.prefixInserts, 0u);
    EXPECT_GT(outcome.prefixReclaims, 0u);
    // Speculative decoding rides the sweep too: draft+verify rounds
    // actually execute on the runtime, some drafts get rejected (the
    // rollback path runs), and at least one request both speculated
    // and was preempted mid-stream (the draft-cache rebuild path).
    EXPECT_GT(outcome.specSteps, 0u);
    EXPECT_GT(outcome.specDrafted, outcome.specAccepted);
    EXPECT_GT(outcome.specPreemptedRequests, 0u);
}

} // namespace
