/**
 * @file
 * Metrics::merge unit tests: the per-replica -> fleet aggregation the
 * cluster router depends on. Covers empty/one-sided merges and the
 * union semantics of the sample distributions.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "base/stats.hh"
#include "base/table.hh"
#include "serve/metrics.hh"

namespace lia {
namespace serve {
namespace {

Metrics
sampleMetrics(double base)
{
    Metrics mx;
    mx.ttft.add(base + 0.1);
    mx.ttft.add(base + 0.2);
    mx.tbt.add(base + 0.01);
    mx.tokenGap.add(base + 0.005);
    mx.tokenGap.add(base + 0.015);
    mx.responseTime.add(base + 1.0);
    mx.queueWait.add(base + 0.05);
    mx.queueDepth.add(3);
    mx.batchOccupancy.add(2);
    mx.kvOccupancy.add(0.5);

    mx.completed = 4;
    mx.rejectedCapacity = 1;
    mx.shedSlo = 2;
    mx.iterations = 10;
    mx.tokensGenerated = 64;
    mx.makespan = base + 5.0;
    mx.busyTime = base + 3.0;

    mx.preemptions = 3;
    mx.swapOuts = 2;
    mx.swapIns = 2;
    mx.recomputes = 1;
    mx.prefillChunks = 6;
    mx.swapOutBytes = 4096;
    mx.swapInBytes = 4096;
    mx.swapBusyTime = 0.25;
    mx.kvReservedPeakBytes = 8192;

    // The streaming histograms mirror their SampleStats twins.
    mx.ttftHist.add(base + 0.1);
    mx.ttftHist.add(base + 0.2);
    mx.tokenGapHist.add(base + 0.005);
    mx.tokenGapHist.add(base + 0.015);
    mx.responseHist.add(base + 1.0);
    return mx;
}

void
expectEqualMetrics(const Metrics &a, const Metrics &b)
{
    EXPECT_EQ(a.ttft.samples(), b.ttft.samples());
    EXPECT_EQ(a.tbt.samples(), b.tbt.samples());
    EXPECT_EQ(a.tokenGap.samples(), b.tokenGap.samples());
    EXPECT_EQ(a.responseTime.samples(), b.responseTime.samples());
    EXPECT_EQ(a.queueWait.samples(), b.queueWait.samples());
    EXPECT_EQ(a.queueDepth.samples(), b.queueDepth.samples());
    EXPECT_EQ(a.batchOccupancy.samples(), b.batchOccupancy.samples());
    EXPECT_EQ(a.kvOccupancy.samples(), b.kvOccupancy.samples());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejectedCapacity, b.rejectedCapacity);
    EXPECT_EQ(a.shedSlo, b.shedSlo);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.busyTime, b.busyTime);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.swapOuts, b.swapOuts);
    EXPECT_EQ(a.swapIns, b.swapIns);
    EXPECT_EQ(a.recomputes, b.recomputes);
    EXPECT_EQ(a.prefillChunks, b.prefillChunks);
    EXPECT_DOUBLE_EQ(a.swapOutBytes, b.swapOutBytes);
    EXPECT_DOUBLE_EQ(a.swapInBytes, b.swapInBytes);
    EXPECT_DOUBLE_EQ(a.swapBusyTime, b.swapBusyTime);
    EXPECT_DOUBLE_EQ(a.kvReservedPeakBytes, b.kvReservedPeakBytes);
    EXPECT_EQ(a.ttftHist.toJson(), b.ttftHist.toJson());
    EXPECT_EQ(a.tokenGapHist.toJson(), b.tokenGapHist.toJson());
    EXPECT_EQ(a.responseHist.toJson(), b.responseHist.toJson());
}

TEST(MetricsMergeTest, EmptyIntoEmptyStaysEmpty)
{
    Metrics into;
    into.merge(Metrics{});
    expectEqualMetrics(into, Metrics{});
    EXPECT_EQ(into.ttft.count(), 0u);
    EXPECT_EQ(into.completed, 0u);
    EXPECT_DOUBLE_EQ(into.makespan, 0.0);
}

TEST(MetricsMergeTest, EmptyOtherIsANoOp)
{
    Metrics into = sampleMetrics(1.0);
    into.merge(Metrics{});
    expectEqualMetrics(into, sampleMetrics(1.0));
}

TEST(MetricsMergeTest, MergingIntoEmptyCopies)
{
    Metrics into;
    into.merge(sampleMetrics(2.0));
    expectEqualMetrics(into, sampleMetrics(2.0));
}

TEST(MetricsMergeTest, TwoSidedMergeSumsAndUnions)
{
    Metrics a = sampleMetrics(1.0);
    Metrics b = sampleMetrics(10.0);
    const Metrics before_a = sampleMetrics(1.0);
    const Metrics before_b = sampleMetrics(10.0);
    a.merge(b);

    // Distributions are unions: counts add, extremes span both sides.
    EXPECT_EQ(a.ttft.count(),
              before_a.ttft.count() + before_b.ttft.count());
    EXPECT_DOUBLE_EQ(a.ttft.min(), before_a.ttft.min());
    EXPECT_DOUBLE_EQ(a.ttft.max(), before_b.ttft.max());
    EXPECT_EQ(a.tokenGap.count(),
              before_a.tokenGap.count() + before_b.tokenGap.count());

    // Counters sum.
    EXPECT_EQ(a.completed, before_a.completed + before_b.completed);
    EXPECT_EQ(a.rejectedCapacity,
              before_a.rejectedCapacity + before_b.rejectedCapacity);
    EXPECT_EQ(a.shedSlo, before_a.shedSlo + before_b.shedSlo);
    EXPECT_EQ(a.iterations, before_a.iterations + before_b.iterations);
    EXPECT_EQ(a.tokensGenerated,
              before_a.tokensGenerated + before_b.tokensGenerated);
    EXPECT_EQ(a.preemptions,
              before_a.preemptions + before_b.preemptions);
    EXPECT_EQ(a.prefillChunks,
              before_a.prefillChunks + before_b.prefillChunks);
    EXPECT_DOUBLE_EQ(a.swapOutBytes,
                     before_a.swapOutBytes + before_b.swapOutBytes);
    EXPECT_DOUBLE_EQ(a.busyTime,
                     before_a.busyTime + before_b.busyTime);
    EXPECT_DOUBLE_EQ(a.swapBusyTime,
                     before_a.swapBusyTime + before_b.swapBusyTime);
    EXPECT_DOUBLE_EQ(
        a.kvReservedPeakBytes,
        before_a.kvReservedPeakBytes + before_b.kvReservedPeakBytes);

    // Makespan is the max (replicas share one clock), not a sum.
    EXPECT_DOUBLE_EQ(a.makespan,
                     std::max(before_a.makespan, before_b.makespan));

    // b was only read.
    expectEqualMetrics(b, before_b);
}

TEST(MetricsMergeTest, PercentilesAreOrderStatisticsOfTheUnion)
{
    Metrics a;
    Metrics b;
    for (int i = 0; i < 50; ++i)
        a.ttft.add(1.0);   // fast replica
    for (int i = 0; i < 50; ++i)
        b.ttft.add(9.0);   // slow replica
    a.merge(b);
    EXPECT_EQ(a.ttft.count(), 100u);
    // The union's median sits between the two modes; each side's own
    // p99 would have hidden the other entirely.
    EXPECT_GT(a.ttft.p99(), 8.0);
    EXPECT_LT(a.ttft.p50(), 9.0);
    EXPECT_DOUBLE_EQ(a.ttft.mean(), 5.0);
}

TEST(MetricsMergeTest, HistogramsMergeWithTheDistributions)
{
    Metrics a = sampleMetrics(1.0);
    Metrics b = sampleMetrics(10.0);
    a.merge(b);
    EXPECT_EQ(a.ttftHist.count(), 4u);
    EXPECT_EQ(a.tokenGapHist.count(), 4u);
    EXPECT_EQ(a.responseHist.count(), 2u);
    // Union extremes survive the merge, like the SampleStats.
    EXPECT_DOUBLE_EQ(a.ttftHist.min(), 1.1);
    EXPECT_DOUBLE_EQ(a.ttftHist.max(), 10.2);
}

TEST(MetricsJsonTest, CarriesTailRowsAndHistograms)
{
    const Metrics mx = sampleMetrics(1.0);
    const std::string json = mx.toJson();
    EXPECT_NE(json.find("\"p999\":"), std::string::npos);
    EXPECT_NE(json.find("\"hist\":{\"ttft_s\":{"), std::string::npos);
    EXPECT_NE(json.find("\"token_gap_s\":{"), std::string::npos);
    EXPECT_NE(json.find("\"response_s\":{"), std::string::npos);
    // Deterministic rendering: same metrics, same bytes.
    EXPECT_EQ(json, sampleMetrics(1.0).toJson());
}

TEST(MetricsTableTest, LatencyTableHasAP999Column)
{
    TextTable table = latencyTable("who");
    SampleStats stats;
    for (int i = 1; i <= 1000; ++i)
        stats.add(static_cast<double>(i));
    addLatencyRow(table, "r", stats, stats.mean());
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("p99.9 (s)"), std::string::npos);
    // p99.9 of 1..1000 is the 1000th-ish order statistic.
    EXPECT_NE(text.find("999"), std::string::npos);
}

} // namespace
} // namespace serve
} // namespace lia
