/**
 * @file
 * End-to-end tests for the continuous-batching serving engine:
 * request-lifecycle accounting, metric consistency, and the
 * determinism guard (same seed, bit-identical results).
 */

#include <gtest/gtest.h>

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/engine.hh"

namespace {

using namespace lia;
using serve::RequestState;

serve::Config
baseConfig()
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond = 8.0 / 60.0;
    cfg.requests = 80;
    cfg.seed = 11;
    cfg.maxBatch = 32;
    return cfg;
}

serve::Result
run(const serve::Config &cfg)
{
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

TEST(ServingEngineTest, EveryRequestIsAccountedFor)
{
    const auto result = run(baseConfig());
    // A leaked KV account is a hard failure, not a tolerance.
    ASSERT_NEAR(result.kvReservedAtDrain, 0.0, 0.5);
    EXPECT_EQ(result.metrics.completed + result.metrics.rejected(),
              result.requests.size());
    for (const auto &request : result.requests) {
        if (request.state == RequestState::Finished) {
            EXPECT_EQ(request.generated, request.lOut);
            EXPECT_LE(request.arrival, request.admitTime);
            EXPECT_LE(request.admitTime, request.firstTokenTime);
            EXPECT_LE(request.firstTokenTime, request.finishTime);
            EXPECT_DOUBLE_EQ(request.kvReservedBytes, 0.0);
        } else {
            EXPECT_EQ(request.state, RequestState::Rejected);
            EXPECT_LT(request.admitTime, 0.0);
        }
    }
}

TEST(ServingEngineTest, MetricsAreInternallyConsistent)
{
    const auto result = run(baseConfig());
    const auto &mx = result.metrics;
    EXPECT_EQ(mx.ttft.count(), mx.completed);
    EXPECT_EQ(mx.responseTime.count(), mx.completed);
    EXPECT_GT(mx.iterations, 0u);
    EXPECT_GT(mx.tokensGenerated, 0);
    EXPECT_LE(mx.busyTime, mx.makespan + 1e-9);
    EXPECT_GT(mx.utilisation(), 0.0);
    EXPECT_LE(mx.utilisation(), 1.0);
    // Every generated token belongs to some request's output budget.
    std::int64_t demanded = 0;
    for (const auto &request : result.requests)
        if (request.state == RequestState::Finished)
            demanded += request.lOut;
    EXPECT_EQ(mx.tokensGenerated, demanded);
}

TEST(ServingEngineTest, BatchOccupancyRespectsTheCeiling)
{
    auto cfg = baseConfig();
    cfg.maxBatch = 4;
    cfg.arrivalRatePerSecond = 30.0 / 60.0;  // force queueing
    const auto result = run(cfg);
    EXPECT_LE(result.metrics.batchOccupancy.max(), 4.0);
    EXPECT_GT(result.metrics.batchOccupancy.max(), 1.0);
}

TEST(ServingEngineTest, DeterministicForSeed)
{
    const auto cfg = baseConfig();
    const auto a = run(cfg);
    const auto b = run(cfg);

    EXPECT_EQ(a.metrics.completed, b.metrics.completed);
    EXPECT_EQ(a.metrics.iterations, b.metrics.iterations);
    EXPECT_EQ(a.metrics.tokensGenerated, b.metrics.tokensGenerated);
    EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
    EXPECT_DOUBLE_EQ(a.metrics.busyTime, b.metrics.busyTime);
    EXPECT_DOUBLE_EQ(a.metrics.ttft.mean(), b.metrics.ttft.mean());
    EXPECT_DOUBLE_EQ(a.metrics.ttft.p95(), b.metrics.ttft.p95());
    EXPECT_DOUBLE_EQ(a.metrics.responseTime.p99(),
                     b.metrics.responseTime.p99());

    // Bit-identical per-request trajectories, not just aggregates.
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].lIn, b.requests[i].lIn);
        EXPECT_EQ(a.requests[i].lOut, b.requests[i].lOut);
        EXPECT_DOUBLE_EQ(a.requests[i].arrival,
                         b.requests[i].arrival);
        EXPECT_EQ(a.requests[i].state, b.requests[i].state);
        EXPECT_DOUBLE_EQ(a.requests[i].finishTime,
                         b.requests[i].finishTime);
    }
}

TEST(ServingEngineTest, RepeatedRunsOfOneEngineAreIndependent)
{
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), baseConfig());
    const auto a = engine.run();
    const auto b = engine.run();
    EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
    EXPECT_EQ(a.metrics.completed, b.metrics.completed);
}

TEST(ServingEngineTest, SeedChangesTheWorkload)
{
    auto cfg = baseConfig();
    const auto a = run(cfg);
    cfg.seed = cfg.seed + 1;
    const auto b = run(cfg);
    EXPECT_NE(a.metrics.makespan, b.metrics.makespan);
}

TEST(ServingEngineTest, CxlSpillRaisesTheAdmissionBudget)
{
    auto cfg = baseConfig();
    const auto spill = run(cfg);
    cfg.cxlSpill = false;
    const auto plain = run(cfg);
    EXPECT_TRUE(spill.paramsInCxl);
    EXPECT_FALSE(plain.paramsInCxl);
    EXPECT_GT(spill.kvBudgetBytes, plain.kvBudgetBytes);
}

/**
 * Regression: shed and completed requests must hand their reserved KV
 * bytes back — across every policy the admission account balances to
 * zero once the run drains, even under heavy SLO shedding and under
 * preemption churn (swap-outs included: the swap pool must also be
 * empty at drain).
 */
TEST(ServingEngineTest, KvAccountBalancesToZeroAtDrain)
{
    const serve::SchedulerPolicy policies[] = {
        serve::SchedulerPolicy::StaticFifo,
        serve::SchedulerPolicy::Continuous,
        serve::SchedulerPolicy::SloAware,
        serve::SchedulerPolicy::Preemptive,
    };
    for (const auto policy : policies) {
        auto cfg = baseConfig();
        cfg.policy = policy;
        cfg.arrivalRatePerSecond = 1.5;   // deep queueing
        cfg.maxBatch = 8;
        if (policy == serve::SchedulerPolicy::SloAware) {
            // Tight targets so a large fraction of requests is shed
            // after their KV-free wait, not admitted-and-completed.
            cfg.slo.ttft = 2.0;
            cfg.slo.tbt = 0.2;
        }
        if (policy == serve::SchedulerPolicy::Preemptive) {
            // Budget small enough that decode growth forces
            // preemptions (both exits move bytes around the account).
            cfg.kvBudgetCapBytes = 6e9;
            cfg.prefillChunkTokens = 128;
        }
        SCOPED_TRACE(testing::Message()
                     << "policy " << static_cast<int>(policy));
        const auto result = run(cfg);
        ASSERT_NEAR(result.kvReservedAtDrain, 0.0, 0.5);
        EXPECT_EQ(result.metrics.swapIns, result.metrics.swapOuts);
        for (const auto &request : result.requests) {
            EXPECT_DOUBLE_EQ(request.kvReservedBytes, 0.0);
            EXPECT_DOUBLE_EQ(request.kvSwappedBytes, 0.0);
        }
        if (policy == serve::SchedulerPolicy::SloAware) {
            EXPECT_GT(result.metrics.shedSlo, 0u);
        }
        if (policy == serve::SchedulerPolicy::Preemptive) {
            EXPECT_GT(result.metrics.preemptions, 0u);
        }
    }
}

TEST(ServingEngineTest, GoodputNeverExceedsCompletions)
{
    auto cfg = baseConfig();
    cfg.policy = serve::SchedulerPolicy::SloAware;
    cfg.slo.ttft = 20.0;
    cfg.slo.tbt = 0.5;
    const auto result = run(cfg);
    const double goodput = result.goodputPerSecond(cfg.slo);
    EXPECT_GE(goodput, 0.0);
    EXPECT_LE(goodput * result.metrics.makespan,
              static_cast<double>(result.metrics.completed) + 1e-6);
    const double attainment = result.sloAttainment(cfg.slo);
    EXPECT_GE(attainment, 0.0);
    EXPECT_LE(attainment, 1.0);
}

} // namespace
