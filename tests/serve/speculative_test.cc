/**
 * @file
 * Speculative decoding test battery (DESIGN.md §11).
 *
 * Locks down the one property speculation must never break: spec-on
 * greedy decode is bit-identical to spec-off greedy decode, at every
 * draft length k and every kernel-pool width (the threads4 re-run in
 * CMake drives the same binary at LIA_THREADS=4).
 *
 *  - Runtime level: randomized prompts through the raw
 *    propose/verifyBatch/truncate loop vs sequential decodeOne, k in
 *    {1, 2, 4, 8}, memcmp on the emitted streams; mid-stream draft
 *    cache discards exercise the rebuild path.
 *  - Serving level: full runtime-backed runs with speculation on
 *    decode the same tokens as the spec-off golden run, per request.
 *  - Accounting: the engine's acceptance counters match a scalar
 *    reference simulation driven by the same injected oracle, and the
 *    analytical pricing helper expectedSpeculativeTokens() matches
 *    its closed form.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/engine.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "runtime/draft.hh"
#include "runtime/executor.hh"
#include "runtime/kv_cache.hh"
#include "serve/engine.hh"
#include "serve/runtime_backend.hh"
#include "support/differential.hh"
#include "support/serving_checks.hh"

namespace {

using namespace lia;
using runtime::CooperativeExecutor;
using runtime::DraftModel;
using runtime::KvCache;
using runtime::TransformerWeights;
using serve::RequestState;
using serve::SchedulerPolicy;

constexpr std::int64_t kDraftLengths[] = {1, 2, 4, 8};

TEST(SpeculativeTest, SpecOnGreedyIsBitIdenticalToSpecOffAcrossK)
{
    const model::ModelConfig target_cfg = model::tinyOpt();
    const model::ModelConfig draft_cfg =
        model::draftModelConfig(target_cfg);
    Rng target_rng(1234);
    CooperativeExecutor target(
        hw::sprA100(),
        TransformerWeights::random(target_cfg, target_rng), {});
    Rng draft_rng(99);
    DraftModel draft(hw::sprA100(),
                     TransformerWeights::random(draft_cfg, draft_rng),
                     {});

    std::mt19937_64 rng(0x5BEC);
    for (const std::int64_t k : kDraftLengths) {
        for (int trial = 0; trial < 6; ++trial) {
            const std::int64_t l_in =
                std::uniform_int_distribution<std::int64_t>(4,
                                                            20)(rng);
            const std::int64_t l_out =
                std::uniform_int_distribution<std::int64_t>(4,
                                                            16)(rng);
            std::vector<std::int64_t> prompt(
                static_cast<std::size_t>(l_in));
            for (auto &token : prompt)
                token = std::uniform_int_distribution<std::int64_t>(
                    0, target_cfg.vocabSize - 1)(rng);
            SCOPED_TRACE(testing::Message()
                         << "k " << k << " trial " << trial << " lIn "
                         << l_in << " lOut " << l_out);

            // Spec-off reference: plain greedy decode.
            KvCache ref_cache(target_cfg, 1, 64);
            std::vector<std::int64_t> want;
            want.push_back(target.prefillChunk(ref_cache, prompt));
            while (static_cast<std::int64_t>(want.size()) < l_out)
                want.push_back(
                    target.decodeOne(ref_cache, want.back()));

            // Spec-on: draft k, verify in one batched pass, roll back
            // rejected KV, repeat — with the engine's end-of-stream
            // clamp so the emitted count never overshoots lOut.
            KvCache cache(target_cfg, 1, 64);
            auto draft_cache = draft.makeCache(64);
            std::vector<std::int64_t> got;
            got.push_back(target.prefillChunk(cache, prompt));
            while (static_cast<std::int64_t>(got.size()) < l_out) {
                // Odd trials discard the draft cache mid-stream (the
                // post-preemption state): propose() must rebuild it
                // from the full stream without changing a token.
                if (trial % 2 == 1 &&
                    static_cast<std::int64_t>(got.size()) ==
                        l_out / 2)
                    draft_cache = draft.makeCache(64);
                const std::int64_t generated =
                    static_cast<std::int64_t>(got.size());
                const std::int64_t k_eff =
                    std::min(k, l_out - generated - 1);
                if (k_eff < 1) {
                    got.push_back(target.decodeOne(cache, got.back()));
                    continue;
                }
                std::vector<std::int64_t> stream = prompt;
                stream.insert(stream.end(), got.begin(), got.end());
                const std::vector<std::int64_t> drafts =
                    draft.propose(*draft_cache, stream, k_eff);
                const runtime::SpeculativeVerify verify =
                    target.verifyBatch(cache, got.back(), drafts);
                DraftModel::truncateAfterVerify(
                    *draft_cache,
                    static_cast<std::int64_t>(stream.size()),
                    verify.accepted, k_eff);
                got.insert(got.end(), verify.emitted.begin(),
                           verify.emitted.end());
                EXPECT_EQ(cache.length(),
                          l_in +
                              static_cast<std::int64_t>(got.size()) -
                              1);
            }

            ASSERT_EQ(got.size(), want.size());
            EXPECT_EQ(got, want);
            EXPECT_EQ(std::memcmp(got.data(), want.data(),
                                  got.size() * sizeof(got[0])),
                      0)
                << "spec-on stream is not memcmp-identical to "
                   "spec-off";
        }
    }
}

TEST(SpeculativeTest, ServedSpecOnOutputsMatchTheSpecOffGolden)
{
    const bool cxl = true;
    const double step = test::tinySharedCosts(cxl)->time(
        model::Stage::Decode, 4, 64);

    serve::Config base;
    base.requests = 8;
    base.seed = 4242;
    base.trace = trace::TraceKind::Code;
    base.maxContext = 128;
    base.maxBatch = 4;
    base.prefillChunkTokens = 16;
    base.kvBudgetCapBytes = 24576;
    base.arrivalRatePerSecond = 1.0 / (step * 25.0);
    base.policy = SchedulerPolicy::Preemptive;
    base.cxlSpill = cxl;

    // Spec-off golden run.
    serve::ServingEngine off_engine(test::tinySystem(cxl),
                                    test::tinyServedModel(), base,
                                    test::tinySharedCosts(cxl));
    serve::RuntimeBackend off_backend(test::tinySystem(cxl),
                                      test::tinyServedModel(), base);
    const serve::Result off = off_engine.run(&off_backend);
    EXPECT_EQ(off.metrics.specSteps, 0u);

    for (const std::int64_t k : kDraftLengths) {
        serve::Config cfg = base;
        cfg.spec.enabled = true;
        cfg.spec.draftTokens = k;
        SCOPED_TRACE(testing::Message() << "draftTokens " << k);

        serve::ServingEngine engine(test::tinySystem(cxl),
                                    test::tinyServedModel(), cfg,
                                    test::tinySharedCosts(cxl));
        serve::RuntimeBackend backend(test::tinySystem(cxl),
                                      test::tinyServedModel(), cfg);
        const serve::Result on = engine.run(&backend);
        test::checkServingInvariants(on, cfg);

        // Speculation changes timing, never tokens: every finished
        // request decoded byte-identically to the spec-off run.
        test::expectIdenticalDecodes(backend, on, off_backend, off);
        EXPECT_GT(on.metrics.specSteps, 0u);
        EXPECT_EQ(on.metrics.specAcceptedTokens +
                      static_cast<std::int64_t>(on.metrics.specSteps),
                  static_cast<std::int64_t>(
                      backend.counters().specTokens));
    }
}

TEST(SpeculativeTest, AcceptanceCountersMatchAScalarReference)
{
    const bool cxl = true;
    const double step = test::tinySharedCosts(cxl)->time(
        model::Stage::Decode, 4, 64);

    for (const SchedulerPolicy policy :
         {SchedulerPolicy::Continuous, SchedulerPolicy::Preemptive}) {
        serve::Config cfg;
        cfg.requests = 16;
        cfg.seed = 77;
        cfg.trace = trace::TraceKind::Code;
        cfg.maxContext = 128;
        cfg.maxBatch = 4;
        cfg.prefillChunkTokens = 16;
        cfg.kvBudgetCapBytes = 32768;
        cfg.arrivalRatePerSecond = 1.0 / (step * 20.0);
        cfg.policy = policy;
        cfg.cxlSpill = cxl;
        cfg.spec.enabled = true;
        cfg.spec.draftTokens = 4;
        // Injected acceptance oracle: a fixed function of the request
        // id and the per-request step index, so a scalar simulation
        // can replay it exactly.
        cfg.spec.oracle = [](std::uint64_t id, std::int64_t k,
                             std::uint64_t spec_step) {
            return static_cast<std::int64_t>(
                (id * 7 + spec_step * 3) %
                static_cast<std::uint64_t>(k + 1));
        };
        SCOPED_TRACE(testing::Message()
                     << "policy " << serve::toString(policy));

        serve::ServingEngine engine(test::tinySystem(cxl),
                                    test::tinyServedModel(), cfg,
                                    test::tinySharedCosts(cxl));
        const serve::Result result = engine.run();
        test::checkServingInvariants(result, cfg);

        // Scalar reference: replay each finished request's lifetime —
        // the prefill pass emits one token, then every decode step
        // drafts k_eff = min(k, lOut - generated - 1) (zero near the
        // output budget) and emits accepted + 1 tokens.
        std::size_t want_steps = 0;
        std::int64_t want_drafted = 0, want_accepted = 0;
        for (const serve::Request &request : result.requests) {
            if (request.state != RequestState::Finished)
                continue;
            std::int64_t generated = 1, steps = 0;
            std::int64_t drafted = 0, accepted = 0;
            while (generated < request.lOut) {
                const std::int64_t k_eff =
                    std::min(cfg.spec.draftTokens,
                             request.lOut - generated - 1);
                if (k_eff < 1) {
                    ++generated;
                    continue;
                }
                const std::int64_t a = cfg.spec.oracle(
                    request.id, k_eff,
                    static_cast<std::uint64_t>(steps));
                ++steps;
                drafted += k_eff;
                accepted += a;
                generated += a + 1;
            }
            EXPECT_EQ(request.specSteps, steps)
                << "request " << request.id;
            EXPECT_EQ(request.specDrafted, drafted)
                << "request " << request.id;
            EXPECT_EQ(request.specAccepted, accepted)
                << "request " << request.id;
            want_steps += static_cast<std::size_t>(steps);
            want_drafted += drafted;
            want_accepted += accepted;
        }
        EXPECT_GT(want_steps, 0u);
        EXPECT_EQ(result.metrics.specSteps, want_steps);
        EXPECT_EQ(result.metrics.specDraftedTokens, want_drafted);
        EXPECT_EQ(result.metrics.specAcceptedTokens, want_accepted);

        // Determinism: the oracle-driven run replays bit-identically.
        serve::ServingEngine again(test::tinySystem(cxl),
                                   test::tinyServedModel(), cfg,
                                   test::tinySharedCosts(cxl));
        test::expectIdenticalRuns(result, again.run());
    }
}

TEST(SpeculativeTest, ExpectedSpeculativeTokensMatchesTheClosedForm)
{
    // E(alpha, k) = sum_{i=0..k} alpha^i.
    EXPECT_DOUBLE_EQ(core::expectedSpeculativeTokens(0.0, 4), 1.0);
    EXPECT_DOUBLE_EQ(core::expectedSpeculativeTokens(1.0, 4), 5.0);
    EXPECT_DOUBLE_EQ(core::expectedSpeculativeTokens(0.5, 1), 1.5);
    EXPECT_DOUBLE_EQ(core::expectedSpeculativeTokens(0.5, 2), 1.75);
    // Monotone in both arguments.
    double prev = 0.0;
    for (const std::int64_t k : kDraftLengths) {
        const double expected =
            core::expectedSpeculativeTokens(0.8, k);
        EXPECT_GT(expected, prev);
        prev = expected;
    }
    EXPECT_LT(core::expectedSpeculativeTokens(0.3, 4),
              core::expectedSpeculativeTokens(0.9, 4));
}

} // namespace
