/**
 * @file
 * Invariant tests for the iteration-level scheduler: FIFO order with
 * no skip-ahead (hence no starvation), batch and KV caps respected,
 * the static cohort priced at its initial size, and the SLO-aware
 * decode cap derived from the engine's iteration estimates.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "serve/admission.hh"
#include "serve/cost_cache.hh"
#include "serve/scheduler.hh"

namespace {

using namespace lia;
using model::Stage;
using serve::IterationPlan;
using serve::Request;

/** Scheduler plus everything it depends on, on SPR-A100 / OPT-30B. */
struct Harness
{
    hw::SystemConfig sys = hw::withCxl(hw::sprA100());
    model::ModelConfig m = model::opt30b();
    serve::Config cfg;
    core::EngineModel engine;
    serve::IterationCostCache costs;
    serve::AdmissionController admission;
    serve::Scheduler scheduler;

    std::vector<Request> requests;
    std::vector<std::size_t> queue;
    std::vector<std::size_t> active;

    explicit Harness(serve::Config config)
        : cfg(std::move(config)), engine(sys, m),
          costs(engine, cfg.contextBucket),
          admission(sys, m, cfg), scheduler(cfg, costs, admission)
    {
    }

    /** Append a queued request and return its index. */
    std::size_t
    enqueue(std::int64_t l_in, std::int64_t l_out, double arrival = 0)
    {
        Request request;
        request.id = requests.size();
        request.lIn = l_in;
        request.lOut = l_out;
        request.arrival = arrival;
        requests.push_back(request);
        queue.push_back(requests.size() - 1);
        return requests.size() - 1;
    }

    IterationPlan
    plan(double now = 0)
    {
        return scheduler.next(now, queue, active, requests);
    }
};

TEST(SchedulerTest, ContinuousAdmitsTheFifoPrefixUpToMaxBatch)
{
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::Continuous;
    cfg.maxBatch = 4;
    Harness h(cfg);
    for (int i = 0; i < 10; ++i)
        h.enqueue(256, 64);

    const auto plan = h.plan();
    ASSERT_EQ(plan.admit.size(), 4u);
    for (std::size_t i = 0; i < plan.admit.size(); ++i)
        EXPECT_EQ(plan.admit[i], i);  // strict FIFO prefix
    EXPECT_TRUE(plan.shed.empty());
    EXPECT_TRUE(plan.decode.empty());
}

TEST(SchedulerTest, BlockedHeadIsNeverSkipped)
{
    // Starvation-freedom: a large head the budget cannot (currently)
    // hold blocks the line; small requests behind it must not jump
    // ahead, or the head could wait forever under sustained load.
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::Continuous;
    Harness h(cfg);

    // Leave only half the head request's reservation free.
    const std::int64_t head_tokens =
        h.m.maxSeqLen / 2 + h.m.maxSeqLen / 4;
    Request hog;
    hog.lIn = static_cast<std::int64_t>(
                  h.admission.kvBudgetBytes() /
                  h.m.kvBytesPerToken()) -
              head_tokens / 2;
    hog.lOut = 0;
    h.admission.reserve(hog);

    h.enqueue(h.m.maxSeqLen / 2, h.m.maxSeqLen / 4);  // won't fit now
    h.enqueue(32, 8);                                 // would fit

    const auto plan = h.plan();
    EXPECT_TRUE(plan.admit.empty());
    h.admission.release(hog);
    const auto retry = h.plan();
    ASSERT_EQ(retry.admit.size(), 2u);
    EXPECT_EQ(retry.admit[0], 0u);  // head admitted first
}

TEST(SchedulerTest, KvReservationsNeverExceedTheBudget)
{
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::Continuous;
    cfg.maxBatch = 2'000;  // far beyond what the KV budget can hold
    Harness h(cfg);
    for (int i = 0; i < 2'000; ++i)
        h.enqueue(h.m.maxSeqLen / 2, h.m.maxSeqLen / 2);

    const auto plan = h.plan();
    EXPECT_GT(plan.admit.size(), 0u);
    EXPECT_LT(plan.admit.size(), 2'000u);
    EXPECT_LE(h.admission.reservedBytes(),
              h.admission.kvBudgetBytes());
}

TEST(SchedulerTest, StaticCohortIsPricedAtItsInitialSize)
{
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::StaticFifo;
    cfg.maxBatch = 8;
    Harness h(cfg);
    for (int i = 0; i < 3; ++i)
        h.enqueue(256, 64);

    const auto first = h.plan();
    ASSERT_EQ(first.admit.size(), 3u);
    h.queue.clear();

    // Two members finish; the survivor still pays for batch 3, and
    // new arrivals may not join the cohort mid-flight.
    h.active = {2};
    h.requests[2].generated = 10;
    h.enqueue(128, 32);
    const auto later = h.plan();
    EXPECT_EQ(later.decode, std::vector<std::size_t>{2});
    EXPECT_EQ(later.decodePriceBatch, 3);
    EXPECT_TRUE(later.admit.empty());
}

TEST(SchedulerTest, SloDecodeCapStaysWithinTheTbtBudget)
{
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::SloAware;
    cfg.maxBatch = 64;
    cfg.slo.tbt = 0.5;
    Harness h(cfg);

    const std::int64_t context = 512;
    const std::int64_t cap = h.scheduler.decodeBatchCap(context);
    ASSERT_GE(cap, 1);
    ASSERT_LE(cap, cfg.maxBatch);
    const std::int64_t key = h.costs.bucketContext(context);
    if (cap > 1) {
        EXPECT_LE(h.costs.time(Stage::Decode, cap, key), cfg.slo.tbt);
    }
    if (cap < cfg.maxBatch) {
        EXPECT_GT(h.costs.time(Stage::Decode, cap + 1, key),
                  cfg.slo.tbt);
    }
}

TEST(SchedulerTest, ImpossibleTbtStillAllowsALoneRequest)
{
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::SloAware;
    cfg.slo.tbt = 1e-9;  // nothing meets this
    Harness h(cfg);
    EXPECT_EQ(h.scheduler.decodeBatchCap(1024), 1);
}

TEST(SchedulerTest, SloAdmissionShedsHopelesslyLateRequests)
{
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::SloAware;
    cfg.slo.ttft = 20.0;
    Harness h(cfg);
    h.enqueue(256, 64, /*arrival=*/0.0);  // has waited 1000 s
    h.enqueue(256, 64, /*arrival=*/999.0);

    const auto plan = h.plan(/*now=*/1000.0);
    ASSERT_EQ(plan.shed.size(), 1u);
    EXPECT_EQ(plan.shed[0], 0u);
    ASSERT_EQ(plan.admit.size(), 1u);
    EXPECT_EQ(plan.admit[0], 1u);
}

TEST(SchedulerTest, ContinuousNeverShedsAndNeverCaps)
{
    serve::Config cfg;
    cfg.policy = serve::SchedulerPolicy::Continuous;
    cfg.slo.ttft = 20.0;  // set but must be ignored
    cfg.slo.tbt = 0.5;
    Harness h(cfg);
    h.enqueue(256, 64, 0.0);
    const auto plan = h.plan(/*now=*/1000.0);
    EXPECT_TRUE(plan.shed.empty());
    EXPECT_EQ(plan.admit.size(), 1u);
    EXPECT_EQ(plan.batchCap, cfg.maxBatch);
}

} // namespace
