/**
 * @file
 * Golden regression for cross-request prefix caching: one fixed
 * Zipfian prompt-sharing trace served twice on the runtime backend —
 * caching off, then caching on — must decode byte-identical greedy
 * token streams for every request. Caching may only change timing and
 * counters, never tokens.
 *
 * The cached run must also genuinely hit (the fixed trace shares
 * prompts across few pools), skip prefill work for the matched tokens,
 * and improve mean TTFT at the same DDR budget; every hit is
 * digest-verified inside the backend (a mismatch aborts the run).
 */

#include <gtest/gtest.h>

#include "serve/engine.hh"
#include "serve/runtime_backend.hh"
#include "support/differential.hh"
#include "support/serving_checks.hh"

namespace {

using namespace lia;

serve::Config
goldenConfig(bool caching)
{
    serve::Config cfg;
    cfg.requests = 24;
    cfg.seed = 7;
    cfg.trace = trace::TraceKind::Code;
    cfg.maxContext = 160;
    cfg.maxBatch = 4;
    cfg.policy = serve::SchedulerPolicy::Continuous;
    cfg.kvBudgetCapBytes = 48 * 1024;
    cfg.prefillChunkTokens = 32;

    // The workload (pool draws, shapes, shared lengths) depends only
    // on the sharing knobs — never on `enabled` — so both runs serve
    // bit-identical request streams.
    cfg.prefix.enabled = caching;
    cfg.prefix.sharingPools = 2;
    cfg.prefix.sharingExponent = 1.0;
    cfg.prefix.sharedFraction = 0.5;
    cfg.prefix.blockTokens = 16;

    const double step = test::tinySharedCosts(true)->time(
        model::Stage::Decode, 4, 64);
    cfg.arrivalRatePerSecond = 1.0 / (20.0 * step);
    return cfg;
}

TEST(PrefixGoldenTest, CachingChangesTimingNeverTokens)
{
    const serve::Config off = goldenConfig(false);
    const serve::Config on = goldenConfig(true);

    serve::ServingEngine engineOff(test::tinySystem(true),
                                   test::tinyServedModel(), off,
                                   test::tinySharedCosts(true));
    serve::RuntimeBackend backendOff(test::tinySystem(true),
                                     test::tinyServedModel(), off);
    const serve::Result cold = engineOff.run(&backendOff);

    serve::ServingEngine engineOn(test::tinySystem(true),
                                  test::tinyServedModel(), on,
                                  test::tinySharedCosts(true));
    serve::RuntimeBackend backendOn(test::tinySystem(true),
                                    test::tinyServedModel(), on);
    const serve::Result warm = engineOn.run(&backendOn);

    // Tokens: byte-identical per request across the two runs.
    test::expectIdenticalDecodes(backendOff, cold, backendOn, warm);
    test::checkServingInvariants(cold, off);
    test::checkServingInvariants(warm, on);

    // The cold run never touches the cache; the warm run genuinely
    // hits, and every hit was attached + digest-verified.
    EXPECT_EQ(cold.metrics.prefixLookups, 0u);
    EXPECT_DOUBLE_EQ(cold.prefixCacheBytesAtDrain, 0.0);
    EXPECT_GT(warm.metrics.prefixHits, 0u);
    EXPECT_GT(warm.metrics.prefixHitTokens, 0);
    EXPECT_EQ(backendOn.counters().prefixAttaches,
              warm.metrics.prefixHits);
    EXPECT_EQ(backendOn.counters().prefixHitsVerified,
              warm.metrics.prefixHits);

    // Hits skip prefill forwards: the warm run runs the same decode
    // steps but strictly fewer prefill-chunk tokens, and mean TTFT
    // improves at the identical DDR budget.
    EXPECT_EQ(warm.kvBudgetBytes, cold.kvBudgetBytes);
    EXPECT_EQ(backendOn.counters().decodeSteps,
              backendOff.counters().decodeSteps);
    EXPECT_LT(warm.metrics.ttft.mean(), cold.metrics.ttft.mean());
}

/** Equal seeds, equal config: the cached path is deterministic. */
TEST(PrefixGoldenTest, CachedRunsAreBitIdentical)
{
    const serve::Config on = goldenConfig(true);
    serve::ServingEngine engine(test::tinySystem(true),
                                test::tinyServedModel(), on,
                                test::tinySharedCosts(true));
    serve::RuntimeBackend backendA(test::tinySystem(true),
                                   test::tinyServedModel(), on);
    const serve::Result a = engine.run(&backendA);
    serve::RuntimeBackend backendB(test::tinySystem(true),
                                   test::tinyServedModel(), on);
    const serve::Result b = engine.run(&backendB);

    test::expectIdenticalRuns(a, b);
    test::expectIdenticalDecodes(backendA, a, backendB, b);
    EXPECT_GT(a.metrics.prefixHits, 0u);
}

} // namespace
