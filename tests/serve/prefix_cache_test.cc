/**
 * @file
 * Property suite for the shared-KV prefix radix tree.
 *
 * Randomized insert/match/split/evict sequences run against a naive
 * reference model — a flat map from cached block-aligned prefixes to
 * residency — maintained purely from the PrefixOps the tree emits.
 * After every step:
 *
 *  - lookup() returns exactly the naive longest cached block-prefix
 *    (and the same demoted-bytes charge);
 *  - refcounts are never negative, spans are whole blocks, and the
 *    tree's byte ledgers equal the per-node sums and the admission
 *    controller's cache accounts (checkInvariants);
 *  - eviction never frees a pinned node or an interior node, and
 *    bytes(tree) == sum of live node spans;
 *  - insertion spends only DDR headroom left by live KV, and never
 *    reclaims a node its own walk descended through.
 *
 * Scenario count follows LIA_PREFIX_SCENARIOS (ctest -L prefix).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "serve/prefix_cache.hh"
#include "support/differential.hh"

namespace {

using namespace lia;

constexpr std::int64_t kBlock = 8;

serve::Config
cacheConfig(double budget_cap)
{
    serve::Config cfg;
    cfg.prefix.enabled = true;
    cfg.prefix.blockTokens = kBlock;
    cfg.kvBudgetCapBytes = budget_cap;
    cfg.maxContext = 256;
    return cfg;
}

/** Test fixture owning one admission account + tree pair. */
struct Harness
{
    serve::Config config;
    serve::AdmissionController admission;
    serve::PrefixCache cache;

    explicit Harness(double budget_cap, double transfer_scale = 1e-9)
        : config(cacheConfig(budget_cap)),
          admission(test::tinySystem(true), test::tinyServedModel(),
                    config),
          cache(test::tinyServedModel(), config, admission,
                pricing(transfer_scale))
    {
    }

    /** Linear stand-in prices: recompute ~ tokens, transfer ~ bytes
     *  (scaled so the demote-vs-drop rule can be steered by tests). */
    static serve::PrefixCache::Pricing pricing(double transfer_scale)
    {
        serve::PrefixCache::Pricing p;
        p.recomputeSeconds = [](std::int64_t tokens) {
            return 1e-6 * static_cast<double>(tokens);
        };
        p.transferSeconds = [transfer_scale](double bytes) {
            return transfer_scale * bytes;
        };
        return p;
    }
};

/**
 * Naive reference: every cached block-aligned prefix, flat. Keyed by
 * the full token prefix; the value tracks whether the covering node is
 * demoted. Maintained only from emitted ops plus the inserted prompts,
 * never by peeking at the tree.
 */
struct Reference
{
    /** One entry per node: the node's covered prompt prefix (tokens
     *  from position 0 through its span end) and its span length. */
    struct NodeRef
    {
        std::vector<std::int64_t> prefix;  //!< [0, startToken + tokens)
        std::int64_t startToken = 0;
        std::int64_t tokens = 0;
        bool demoted = false;
    };

    std::map<std::uint64_t, NodeRef> nodes;

    void apply(const std::vector<serve::PrefixOp> &ops,
               const std::vector<std::int64_t> &prompt)
    {
        for (const auto &op : ops) {
            switch (op.kind) {
              case serve::PrefixOp::Kind::Insert: {
                NodeRef ref;
                ref.startToken = op.startToken;
                ref.tokens = op.tokens;
                ref.prefix.assign(prompt.begin(),
                                  prompt.begin() + op.startToken +
                                      op.tokens);
                nodes.emplace(op.node, std::move(ref));
                break;
              }
              case serve::PrefixOp::Kind::Split: {
                auto &tail = nodes.at(op.tail);
                NodeRef head;
                head.startToken = tail.startToken;
                head.tokens = op.tokens;
                head.prefix.assign(
                    tail.prefix.begin(),
                    tail.prefix.begin() + tail.startToken + op.tokens);
                head.demoted = tail.demoted;
                tail.startToken += op.tokens;
                tail.tokens -= op.tokens;
                nodes.emplace(op.node, std::move(head));
                break;
              }
              case serve::PrefixOp::Kind::Evict:
              case serve::PrefixOp::Kind::DropCxl:
                ASSERT_EQ(nodes.erase(op.node), 1u);
                break;
              case serve::PrefixOp::Kind::Demote:
                nodes.at(op.node).demoted = true;
                break;
            }
        }
    }

    /** Longest cached block-prefix of @p prompt under @p cap, plus the
     *  demoted bytes a hit would read back. */
    std::pair<std::int64_t, double>
    longestMatch(const std::vector<std::int64_t> &prompt,
                 std::int64_t cap, double per_token) const
    {
        const std::int64_t limit =
            std::min<std::int64_t>(
                cap, static_cast<std::int64_t>(prompt.size())) /
            kBlock * kBlock;
        // A depth counts only when every shallower block is cached
        // too (the radix walk cannot jump gaps), so scan depths in
        // order and stop at the first one no node covers.
        std::int64_t best = 0;
        double cxl = 0;
        for (std::int64_t depth = kBlock; depth <= limit;
             depth += kBlock) {
            const NodeRef *cover = nullptr;
            for (const auto &entry : nodes) {
                const NodeRef &ref = entry.second;
                if (ref.startToken < depth &&
                    depth <= ref.startToken + ref.tokens &&
                    static_cast<std::int64_t>(ref.prefix.size()) >=
                        depth &&
                    std::equal(ref.prefix.begin(),
                               ref.prefix.begin() + depth,
                               prompt.begin())) {
                    cover = &ref;
                    break;
                }
            }
            if (cover == nullptr)
                break;
            best = depth;
            if (cover->demoted)
                cxl += per_token * static_cast<double>(kBlock);
        }
        return {best, cxl};
    }
};

/** Random block-aligned prompt over a tiny alphabet: collisions (and
 *  with them shared prefixes, splits, partial matches) are frequent. */
std::vector<std::int64_t>
randomPrompt(std::mt19937_64 &rng)
{
    const std::int64_t blocks =
        std::uniform_int_distribution<std::int64_t>(1, 6)(rng);
    std::uniform_int_distribution<std::int64_t> token(0, 2);
    std::vector<std::int64_t> prompt;
    prompt.reserve(static_cast<std::size_t>(blocks * kBlock + 3));
    for (std::int64_t i = 0; i < blocks * kBlock; ++i)
        prompt.push_back(token(rng));
    // A ragged tail exercises block-floor rounding.
    const std::int64_t tail =
        std::uniform_int_distribution<std::int64_t>(0, kBlock - 1)(rng);
    for (std::int64_t i = 0; i < tail; ++i)
        prompt.push_back(token(rng));
    return prompt;
}

std::size_t
scenarioCount()
{
    return test::envScenarioCount("LIA_PREFIX_SCENARIOS", 60);
}

TEST(PrefixCacheProperty, MatchesNaiveReferenceUnderRandomOps)
{
    const double per_token =
        test::tinyServedModel().kvBytesPerToken();
    std::mt19937_64 rng(20260808);

    for (std::size_t scenario = 0; scenario < scenarioCount();
         ++scenario) {
        // Budgets span "everything fits" to "constant reclaim".
        const double budgets[] = {4096, 16384, 65536};
        // Cheap transfers demote aggressively; expensive ones drop.
        const double scales[] = {1e-9, 1e-3};
        Harness h(budgets[scenario % 3], scales[scenario % 2]);
        Reference ref;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> pins;

        const int steps =
            std::uniform_int_distribution<int>(20, 60)(rng);
        for (int step = 0; step < steps; ++step) {
            const int action =
                std::uniform_int_distribution<int>(0, 9)(rng);
            const std::vector<std::int64_t> prompt = randomPrompt(rng);

            if (action < 5) {
                const auto ops = h.cache.insert(
                    prompt, static_cast<std::uint64_t>(step));
                ref.apply(ops, prompt);
            } else if (action < 8) {
                const std::int64_t cap =
                    std::uniform_int_distribution<std::int64_t>(
                        1, 64)(rng);
                const auto match = h.cache.lookup(prompt, cap);
                const auto naive =
                    ref.longestMatch(prompt, cap, per_token);
                ASSERT_EQ(match.tokens, naive.first)
                    << "scenario " << scenario << " step " << step;
                EXPECT_NEAR(match.cxlBytes, naive.second, 0.5);
                if (match.hit() &&
                    std::uniform_int_distribution<int>(0, 1)(rng)) {
                    const auto hit = h.cache.commitHit(match, 0);
                    pins.emplace_back(hit.node, hit.node);
                }
            } else if (action < 9) {
                const double want =
                    per_token *
                    std::uniform_int_distribution<std::int64_t>(
                        1, 128)(rng);
                const auto ops = h.cache.makeRoom(want);
                ref.apply(ops, prompt);
                // Reclaim must never have freed a pinned node.
                for (const auto &pin : pins)
                    EXPECT_TRUE(ref.nodes.count(pin.first))
                        << "eviction freed pinned node " << pin.first;
            } else if (!pins.empty()) {
                h.cache.unpin(pins.back().first);
                pins.pop_back();
            }

            // Structural + ledger invariants after every step.
            h.cache.checkInvariants();
            double span_bytes = 0;
            for (const auto &view : h.cache.nodes()) {
                EXPECT_GE(view.refs, 0);
                EXPECT_EQ(view.tokens % kBlock, 0);
                span_bytes +=
                    per_token * static_cast<double>(view.tokens);
            }
            EXPECT_NEAR(span_bytes,
                        h.cache.ddrBytes() + h.cache.cxlBytes(), 0.5);
            EXPECT_EQ(h.cache.size(), ref.nodes.size());
        }
        while (!pins.empty()) {
            h.cache.unpin(pins.back().first);
            pins.pop_back();
        }
    }
}

TEST(PrefixCacheProperty, PinnedNodesSurviveFullReclaim)
{
    Harness h(1 << 20);
    std::vector<std::int64_t> prompt(4 * kBlock, 7);
    h.cache.insert(prompt, 1);

    const auto match = h.cache.lookup(prompt, 3 * kBlock);
    ASSERT_EQ(match.tokens, 3 * kBlock);
    const auto hit = h.cache.commitHit(match, 0);

    // Reclaim far more than the tree holds: the pinned terminal (and
    // every ancestor) must survive; only unpinned leaves may go.
    h.cache.makeRoom(1e9);
    h.cache.checkInvariants();
    bool terminal_alive = false;
    for (const auto &view : h.cache.nodes())
        terminal_alive |= view.id == hit.node;
    EXPECT_TRUE(terminal_alive);

    // Unpinned, the whole tree is reclaimable (demotions count as
    // reclaimed DDR; a drained tree holds no resident bytes).
    h.cache.unpin(hit.node);
    h.cache.makeRoom(1e9);
    h.cache.checkInvariants();
    EXPECT_DOUBLE_EQ(h.cache.ddrBytes(), 0.0);
}

TEST(PrefixCacheProperty, InsertionSpendsOnlyHeadroom)
{
    // Live KV first: a reservation takes most of the budget, leaving
    // headroom for exactly two blocks of cached prefix.
    const double per_token =
        test::tinyServedModel().kvBytesPerToken();
    Harness h(per_token * 40);
    serve::Request live;
    live.id = 0;
    live.lIn = 31;
    live.lOut = 1;
    h.admission.reserve(live);

    std::vector<std::int64_t> prompt(4 * kBlock, 3);
    h.cache.insert(prompt, 1);
    h.cache.checkInvariants();
    // Whatever was cached fits the leftover headroom; live KV intact.
    EXPECT_LE(h.cache.ddrBytes(),
              h.admission.kvBudgetBytes() -
                  h.admission.reservedBytes() + 0.5);
    EXPECT_DOUBLE_EQ(h.admission.reservedBytes(),
                     per_token * 32);
    h.admission.release(live);
}

TEST(PrefixCacheProperty, SplitPreservesMatchDepths)
{
    Harness h(1 << 20);
    // Two prompts sharing two blocks, diverging in the third.
    std::vector<std::int64_t> a(4 * kBlock, 1);
    std::vector<std::int64_t> b(a.begin(), a.begin() + 2 * kBlock);
    b.resize(4 * kBlock, 2);

    h.cache.insert(a, 1);
    const auto ops = h.cache.insert(b, 2);
    h.cache.checkInvariants();

    // The divergence forced exactly one split and one insert.
    std::size_t splits = 0, inserts = 0;
    for (const auto &op : ops) {
        splits += op.kind == serve::PrefixOp::Kind::Split;
        inserts += op.kind == serve::PrefixOp::Kind::Insert;
    }
    EXPECT_EQ(splits, 1u);
    EXPECT_EQ(inserts, 1u);

    // Both prompts still match in full; a half-block cap floors down.
    EXPECT_EQ(h.cache.lookup(a, 4 * kBlock).tokens, 4 * kBlock);
    EXPECT_EQ(h.cache.lookup(b, 4 * kBlock).tokens, 4 * kBlock);
    EXPECT_EQ(h.cache.lookup(a, 3 * kBlock - 1).tokens, 2 * kBlock);
}

TEST(PrefixCacheProperty, InsertNeverReclaimsItsOwnWalkPath)
{
    // Regression: inserting a prompt that extends a cached prefix
    // walks through the shared ancestor, then reclaims headroom for
    // the new suffix. The reclaim must not victimize the very node
    // the walk stands on — that would hang the new node under a
    // freed parent. Budget holds exactly the shared node, transfers
    // are priced prohibitively (eviction, never demotion).
    const double per_token =
        test::tinyServedModel().kvBytesPerToken();
    Harness h(per_token * 2 * kBlock, /*transfer_scale=*/1e3);

    std::vector<std::int64_t> shared(2 * kBlock, 4);
    h.cache.insert(shared, 1);
    ASSERT_EQ(h.cache.size(), 1u);

    std::vector<std::int64_t> extended(shared);
    extended.resize(4 * kBlock, 5);
    const auto ops = h.cache.insert(extended, 2);
    h.cache.checkInvariants();

    // No headroom and no reclaimable victim off the walk path: the
    // suffix stays uncached, the shared prefix stays matchable.
    for (const auto &op : ops)
        EXPECT_NE(op.kind, serve::PrefixOp::Kind::Evict);
    EXPECT_EQ(h.cache.size(), 1u);
    EXPECT_EQ(h.cache.lookup(shared, 2 * kBlock).tokens, 2 * kBlock);
    EXPECT_EQ(h.cache.lookup(extended, 4 * kBlock).tokens, 2 * kBlock);
}

TEST(PrefixCacheProperty, DemotedNodesStayMatchableAndPriceReads)
{
    const double per_token =
        test::tinyServedModel().kvBytesPerToken();
    // Near-free transfers: the §5 rule always prefers demotion.
    Harness h(1 << 20, 1e-12);
    std::vector<std::int64_t> prompt(3 * kBlock, 5);
    h.cache.insert(prompt, 1);
    const double bytes = h.cache.ddrBytes();
    ASSERT_GT(bytes, 0);

    const auto ops = h.cache.makeRoom(bytes);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops.front().kind, serve::PrefixOp::Kind::Demote);
    EXPECT_DOUBLE_EQ(h.cache.ddrBytes(), 0.0);
    EXPECT_DOUBLE_EQ(h.cache.cxlBytes(), bytes);
    h.cache.checkInvariants();

    // Still matchable — and the hit charges the read-back bytes.
    const auto match = h.cache.lookup(prompt, 3 * kBlock);
    EXPECT_EQ(match.tokens, 3 * kBlock);
    EXPECT_NEAR(match.cxlBytes, per_token * 3 * kBlock, 0.5);
}

} // namespace
