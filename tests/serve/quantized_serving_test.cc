/**
 * @file
 * Serving on the int8 runtime (DESIGN.md §12): an int8-quantized
 * model (weightBytesPerElement 1.0) served through ServingEngine with
 * a RuntimeBackend must flow end to end — the backend derives
 * ExecutorConfig::weightPrecision from the model config, so every
 * executed projection runs the int8 VNNI-style packed kernels — while
 * keeping all the serving invariants: engine/runtime token accounting
 * in lockstep, no KV leaks at drain, served streams identical to
 * uninterrupted single-sequence generation, and bit-identical repeat
 * runs (the int8 path is deterministic at any thread count, so a
 * served workload is reproducible like the bf16 one).
 */

#include <gtest/gtest.h>

#include <vector>

#include "model/config.hh"
#include "serve/engine.hh"
#include "serve/runtime_backend.hh"
#include "support/differential.hh"

namespace {

using namespace lia;
using serve::RequestState;

model::ModelConfig
int8ServedModel()
{
    // The differential harness's tiny served model, int8-priced: the
    // backend sees weightBytesPerElement == 1.0 and switches the
    // executor to the int8 packed kernels.
    return model::quantized(model::tinyOpt(32, 2, 2, 256, 101),
                            model::WeightPrecision::Int8);
}

serve::Config
servedConfig()
{
    serve::Config cfg;
    cfg.requests = 6;
    cfg.seed = 21;
    cfg.maxBatch = 4;
    cfg.trace = trace::TraceKind::Code;
    cfg.maxContext = 128;
    cfg.prefillChunkTokens = 16;     // exercise chunked prefill
    cfg.kvBudgetCapBytes = 1 << 20;  // generous: admit everything
    cfg.arrivalRatePerSecond = 50.0;
    return cfg;
}

serve::Result
run(serve::RuntimeBackend &backend, const serve::Config &cfg)
{
    serve::ServingEngine engine(test::tinySystem(false),
                                int8ServedModel(), cfg);
    return engine.run(&backend);
}

TEST(QuantizedServingTest, Int8RunKeepsTheServingInvariants)
{
    const auto cfg = servedConfig();
    serve::RuntimeBackend backend(test::tinySystem(false),
                                  int8ServedModel(), cfg);
    const auto result = run(backend, cfg);

    EXPECT_GT(result.metrics.completed, 0u);
    EXPECT_EQ(result.metrics.completed + result.metrics.rejected(),
              result.requests.size());

    // Engine accounting and executed runtime work in lockstep.
    const auto &counters = backend.counters();
    EXPECT_EQ(counters.prefillChunks, result.metrics.prefillChunks);
    EXPECT_EQ(static_cast<std::int64_t>(counters.tokensProduced()),
              result.metrics.tokensGenerated);

    // No live or parked KV after the drain.
    EXPECT_DOUBLE_EQ(backend.liveKvBytes(), 0.0);
    EXPECT_DOUBLE_EQ(backend.swappedKvBytes(), 0.0);
}

TEST(QuantizedServingTest, ServedStreamsMatchUninterruptedReference)
{
    // Chunked prefill and batching must not change a request's int8
    // greedy stream: each finished request's served tokens equal one
    // monolithic prefill + plain decode on a fresh cache.
    const auto cfg = servedConfig();
    serve::RuntimeBackend backend(test::tinySystem(false),
                                  int8ServedModel(), cfg);
    const auto result = run(backend, cfg);

    std::size_t checked = 0;
    for (const auto &request : result.requests) {
        if (request.state != RequestState::Finished)
            continue;
        EXPECT_EQ(backend.outputs(request.id),
                  backend.referenceOutputs(request))
            << "request " << request.id;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST(QuantizedServingTest, RepeatRunsAreBitIdentical)
{
    const auto cfg = servedConfig();
    serve::RuntimeBackend first(test::tinySystem(false),
                                int8ServedModel(), cfg);
    serve::RuntimeBackend second(test::tinySystem(false),
                                 int8ServedModel(), cfg);
    const auto a = run(first, cfg);
    const auto b = run(second, cfg);

    EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
    EXPECT_EQ(a.metrics.tokensGenerated, b.metrics.tokensGenerated);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        const auto &ra = a.requests[i];
        if (ra.state != RequestState::Finished)
            continue;
        EXPECT_EQ(first.outputs(ra.id), second.outputs(ra.id))
            << "request " << ra.id;
    }
}

} // namespace
