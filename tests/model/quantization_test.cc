/**
 * @file
 * Tests for the weight-only quantization extension.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"

#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"
#include "model/sublayer.hh"

namespace {

using namespace lia;
using namespace lia::model;

TEST(QuantizationTest, PrecisionScalesWeightBytesOnly)
{
    const auto bf16 = opt30b();
    const auto int8 = quantized(bf16, WeightPrecision::Int8);
    const auto int4 = quantized(bf16, WeightPrecision::Int4);
    EXPECT_DOUBLE_EQ(int8.totalParamBytes(),
                     bf16.totalParamBytes() / 2.0);
    EXPECT_DOUBLE_EQ(int4.totalParamBytes(),
                     bf16.totalParamBytes() / 4.0);
    // KV cache stays BF16.
    EXPECT_DOUBLE_EQ(int4.kvBytesPerToken(), bf16.kvBytesPerToken());
}

TEST(QuantizationTest, SublayerCostsFollowPrecision)
{
    const auto bf16 = opt175b();
    const auto int8 = quantized(bf16, WeightPrecision::Int8);
    Workload w{Stage::Decode, 8, 512};
    for (auto sub : allSublayers()) {
        const auto c16 = sublayerCosts(bf16, w, sub);
        const auto c8 = sublayerCosts(int8, w, sub);
        if (isParamSublayer(sub)) {
            EXPECT_DOUBLE_EQ(c8.dY, c16.dY / 2.0) << toString(sub);
        } else {
            EXPECT_DOUBLE_EQ(c8.dY, c16.dY) << toString(sub);
        }
        // Compute and activations are precision-independent.
        EXPECT_DOUBLE_EQ(c8.flops, c16.flops);
        EXPECT_DOUBLE_EQ(c8.dX, c16.dX);
    }
}

TEST(QuantizationTest, QuantizationShiftsDecodeCrossoverDown)
{
    // Cheaper parameter transfers make the GPU attractive earlier.
    const auto sys = hw::sprA100();
    auto crossover = [&](const ModelConfig &m) {
        core::CostModel cm(sys, m, {});
        core::PolicyOptimizer opt(cm);
        std::int64_t lo = 1, hi = 4096;
        while (lo < hi) {
            const auto mid = (lo + hi) / 2;
            Workload w{Stage::Decode, mid, 512};
            if (opt.optimize(w).policy == core::Policy::fullCpu())
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    };
    const auto bf16 = opt175b();
    const auto int4 = quantized(bf16, WeightPrecision::Int4);
    EXPECT_LT(crossover(int4), crossover(bf16));
}

TEST(QuantizationTest, Int4RaisesMaxBatch)
{
    const auto bf16 = opt30b();
    const auto int4 = quantized(bf16, WeightPrecision::Int4);
    const double cap = 512e9;
    EXPECT_GT(maxBatchForCapacity(int4, 256, 32, cap),
              maxBatchForCapacity(bf16, 256, 32, cap));
}

TEST(QuantizationTest, Opt175bInt4FitsTwoGpusWorthOfMemory)
{
    // §1 footnote: even 4-bit OPT-175B needs ~two H100s for weights.
    const auto int4 = quantized(opt175b(), WeightPrecision::Int4);
    const double two_h100 = 2.0 * hw::sprH100().gpu.memoryCapacity;
    EXPECT_LT(int4.totalParamBytes(), two_h100);
    EXPECT_GT(int4.totalParamBytes(),
              hw::sprH100().gpu.memoryCapacity);
}

TEST(QuantizationTest, ValidateRejectsNonsensePrecision)
{
    detail::setThrowOnError(true);
    auto bad = opt30b();
    bad.weightBytesPerElement = 0.0;
    EXPECT_THROW(bad.validate(), std::logic_error);
    bad.weightBytesPerElement = 4.0;  // wider than activations
    EXPECT_THROW(bad.validate(), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(QuantizationTest, NamesAnnotated)
{
    EXPECT_EQ(quantized(opt30b(), WeightPrecision::Int8).name,
              "OPT-30B-int8");
    EXPECT_EQ(quantized(opt30b(), WeightPrecision::Bf16).name,
              "OPT-30B");
    EXPECT_STREQ(toString(WeightPrecision::Int4), "INT4");
}

} // namespace
