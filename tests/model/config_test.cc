/**
 * @file
 * Unit tests for LLM architecture descriptors.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "model/config.hh"

namespace {

using namespace lia::model;

TEST(ModelConfigTest, Opt175bDimensions)
{
    const auto m = opt175b();
    EXPECT_EQ(m.dModel, 12288);
    EXPECT_EQ(m.numLayers, 96);
    EXPECT_EQ(m.numHeads, 96);
    EXPECT_EQ(m.headDim, 128);
    EXPECT_EQ(m.ffnDim, 4 * 12288);
    EXPECT_EQ(m.maxSeqLen, 2048);
}

TEST(ModelConfigTest, Opt175bParameterCountNear175Billion)
{
    EXPECT_NEAR(opt175b().totalParams(), 175e9, 8e9);
}

TEST(ModelConfigTest, Opt30bParameterCountNear30Billion)
{
    EXPECT_NEAR(opt30b().totalParams(), 30e9, 2e9);
}

TEST(ModelConfigTest, Opt66bParameterCountNear66Billion)
{
    EXPECT_NEAR(opt66b().totalParams(), 66e9, 3e9);
}

TEST(ModelConfigTest, Opt13bParameterCountNear13Billion)
{
    EXPECT_NEAR(opt13b().totalParams(), 13e9, 1e9);
}

TEST(ModelConfigTest, Llama70bParameterCountNear70Billion)
{
    EXPECT_NEAR(llama2_70b().totalParams(), 70e9, 4e9);
}

TEST(ModelConfigTest, Llama70bUsesGroupedQueryAttention)
{
    const auto m = llama2_70b();
    EXPECT_EQ(m.kvHeads, 8);
    EXPECT_EQ(m.kvDim(), 8 * 128);
    EXPECT_TRUE(m.gatedFfn);
}

TEST(ModelConfigTest, Bloom176bParameterCountNear176Billion)
{
    EXPECT_NEAR(bloom176b().totalParams(), 176e9, 10e9);
}

TEST(ModelConfigTest, DecoderLayerBytesMatchPaperExample)
{
    // §5.2: LIA's per-decoder-layer unit is ~1.2 GB for OPT-30B.
    EXPECT_NEAR(opt30b().decoderLayerParamBytes(), 1.2e9, 0.15e9);
}

TEST(ModelConfigTest, Opt175bLayerIs12DSquaredParams)
{
    const auto m = opt175b();
    EXPECT_DOUBLE_EQ(m.decoderLayerParams(),
                     12.0 * m.dModel * m.dModel);
}

TEST(ModelConfigTest, KvBytesPerTokenFormula)
{
    const auto m = opt175b();
    // 2 (K and V) * kvDim * layers * 2 bytes.
    EXPECT_DOUBLE_EQ(m.kvBytesPerToken(),
                     2.0 * 2.0 * 12288 * 96);
}

TEST(ModelConfigTest, MoeStoresAllExperts)
{
    const auto moe = moeMixtral8x7b();
    ModelConfig dense = moe;
    dense.numExperts = 1;
    dense.expertTopK = 1;
    const double moe_ffn =
        moe.decoderLayerParams() - 2.0 * moe.dModel * moe.dModel -
        2.0 * moe.dModel * moe.kvDim();
    const double dense_ffn =
        dense.decoderLayerParams() - 2.0 * dense.dModel * dense.dModel -
        2.0 * dense.dModel * dense.kvDim();
    EXPECT_NEAR(moe_ffn / dense_ffn, 8.0, 1e-9);
}

TEST(ModelConfigTest, TinyModelValidates)
{
    const auto m = tinyOpt();
    EXPECT_EQ(m.dModel, 64);
    EXPECT_EQ(m.numLayers, 4);
    EXPECT_NO_THROW(m.validate());
}

TEST(ModelConfigTest, ValidateRejectsMismatchedHeads)
{
    lia::detail::setThrowOnError(true);
    ModelConfig bad = opt30b();
    bad.headDim = 100;  // heads * headDim != dModel
    EXPECT_THROW(bad.validate(), std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(ModelConfigTest, ValidateRejectsBadKvHeads)
{
    lia::detail::setThrowOnError(true);
    ModelConfig bad = llama2_70b();
    bad.kvHeads = 7;  // 64 % 7 != 0
    EXPECT_THROW(bad.validate(), std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(ModelConfigTest, ValidateRejectsBadTopK)
{
    lia::detail::setThrowOnError(true);
    ModelConfig bad = moeMixtral8x7b();
    bad.expertTopK = 9;  // > numExperts
    EXPECT_THROW(bad.validate(), std::logic_error);
    lia::detail::setThrowOnError(false);
}

} // namespace
