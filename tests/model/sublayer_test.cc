/**
 * @file
 * Tests for the Table-1 sublayer data-size and FLOP formulas.
 */

#include <gtest/gtest.h>

#include "model/sublayer.hh"

namespace {

using namespace lia::model;

constexpr double kBe = 2.0;  // bytes per BF16 element

class Table1PrefillTest : public ::testing::Test
{
  protected:
    ModelConfig m = opt175b();
    double d = 12288;
    std::int64_t b = 180;
    std::int64_t l = 512;
    Workload w{Stage::Prefill, 180, 512};
};

TEST_F(Table1PrefillTest, QkvMapping)
{
    const auto c = sublayerCosts(m, w, Sublayer::QkvMapping);
    EXPECT_DOUBLE_EQ(c.dX, kBe * b * l * d);      // 2BLd
    EXPECT_DOUBLE_EQ(c.dY, 6.0 * d * d);          // 6d^2
    EXPECT_DOUBLE_EQ(c.flops, 6.0 * b * l * d * d);
    EXPECT_DOUBLE_EQ(c.dKv, 4.0 * b * l * d);     // K + V at 2 bytes
}

TEST_F(Table1PrefillTest, AttentionQk)
{
    const auto c = sublayerCosts(m, w, Sublayer::AttnScoreQK);
    EXPECT_DOUBLE_EQ(c.dX, kBe * b * l * d);
    EXPECT_DOUBLE_EQ(c.dY, kBe * b * l * d);      // K cache
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * b * l * l * d);
}

TEST_F(Table1PrefillTest, AttentionSv)
{
    const auto c = sublayerCosts(m, w, Sublayer::AttnScoreSV);
    EXPECT_DOUBLE_EQ(c.dY, kBe * b * l * d);      // V cache
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * b * l * l * d);
}

TEST_F(Table1PrefillTest, OutProjection)
{
    const auto c = sublayerCosts(m, w, Sublayer::OutProjection);
    EXPECT_DOUBLE_EQ(c.dX, kBe * b * l * d);
    EXPECT_DOUBLE_EQ(c.dY, kBe * d * d);          // 2d^2
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * b * l * d * d);
}

TEST_F(Table1PrefillTest, Fc1)
{
    const auto c = sublayerCosts(m, w, Sublayer::Fc1);
    EXPECT_DOUBLE_EQ(c.dX, kBe * b * l * d);
    EXPECT_DOUBLE_EQ(c.dY, 8.0 * d * d);          // 8d^2
    EXPECT_DOUBLE_EQ(c.flops, 8.0 * b * l * d * d);
}

TEST_F(Table1PrefillTest, Fc2)
{
    const auto c = sublayerCosts(m, w, Sublayer::Fc2);
    EXPECT_DOUBLE_EQ(c.dX, 8.0 * b * l * d);      // 8BLd
    EXPECT_DOUBLE_EQ(c.dY, 8.0 * d * d);
    EXPECT_DOUBLE_EQ(c.flops, 8.0 * b * l * d * d);
}

class Table1DecodeTest : public ::testing::Test
{
  protected:
    ModelConfig m = opt175b();
    double d = 12288;
    std::int64_t b = 180;
    std::int64_t l = 512;
    Workload w{Stage::Decode, 180, 512};
};

TEST_F(Table1DecodeTest, QkvMapping)
{
    const auto c = sublayerCosts(m, w, Sublayer::QkvMapping);
    EXPECT_DOUBLE_EQ(c.dX, kBe * b * d);          // 2Bd
    EXPECT_DOUBLE_EQ(c.dY, 6.0 * d * d);
    EXPECT_DOUBLE_EQ(c.flops, 6.0 * b * d * d);
}

TEST_F(Table1DecodeTest, AttentionQkReadsFullCache)
{
    const auto c = sublayerCosts(m, w, Sublayer::AttnScoreQK);
    EXPECT_DOUBLE_EQ(c.dX, kBe * b * d);
    EXPECT_DOUBLE_EQ(c.dY, kBe * b * l * d);      // 2BLd cache
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * b * l * d);
}

TEST_F(Table1DecodeTest, Fc2)
{
    const auto c = sublayerCosts(m, w, Sublayer::Fc2);
    EXPECT_DOUBLE_EQ(c.dX, 8.0 * b * d);
    EXPECT_DOUBLE_EQ(c.flops, 8.0 * b * d * d);
}

TEST(SublayerTest, ActivationChainIsConsistent)
{
    // Each sublayer's dX equals the previous sublayer's dOut.
    const auto m = opt175b();
    for (auto stage : {Stage::Prefill, Stage::Decode}) {
        Workload w{stage, 16, 256};
        const auto subs = allSublayers();
        for (std::size_t i = 1; i < subs.size(); ++i) {
            const auto prev = sublayerCosts(m, w, subs[i - 1]);
            const auto cur = sublayerCosts(m, w, subs[i]);
            EXPECT_DOUBLE_EQ(cur.dX, prev.dOut)
                << toString(subs[i]) << " " << toString(stage);
        }
    }
}

TEST(SublayerTest, OpsPerByteRangeMatchesFig1)
{
    // Fig. 1: OPT-175B at L=512, B=180 spans ~1 to tens of thousands.
    const auto m = opt175b();
    double lo = 1e18, hi = 0;
    for (auto stage : {Stage::Prefill, Stage::Decode}) {
        Workload w{stage, 180, 512};
        for (auto sub : allSublayers()) {
            const double opb = sublayerCosts(m, w, sub).opsPerByte();
            lo = std::min(lo, opb);
            hi = std::max(hi, opb);
        }
    }
    EXPECT_NEAR(lo, 1.0, 0.5);      // decode attention scoring
    EXPECT_GT(hi, 10'000.0);        // prefill FC1
}

TEST(SublayerTest, AttentionScoringIsTheMemoryBoundExtreme)
{
    // §4: Q x K^T in decode has the lowest ops/byte of all sublayers.
    const auto m = opt175b();
    Workload w{Stage::Decode, 180, 512};
    const double qk =
        sublayerCosts(m, w, Sublayer::AttnScoreQK).opsPerByte();
    // S x V sits within a percent of Q x K^T (both ~1 op/byte); every
    // other sublayer is far above.
    for (auto sub : allSublayers()) {
        EXPECT_LE(qk, sublayerCosts(m, w, sub).opsPerByte() + 0.01)
            << toString(sub);
    }
}

TEST(SublayerTest, Fc1IsTheComputeBoundExtremeInPrefill)
{
    const auto m = opt175b();
    Workload w{Stage::Prefill, 180, 512};
    const double fc1 = sublayerCosts(m, w, Sublayer::Fc1).opsPerByte();
    for (auto sub : allSublayers()) {
        EXPECT_GE(fc1, sublayerCosts(m, w, sub).opsPerByte() - 1e-9)
            << toString(sub);
    }
}

TEST(SublayerTest, ParamAndKvClassesPartitionSublayers)
{
    int params = 0, kv = 0;
    for (auto sub : allSublayers()) {
        EXPECT_NE(isParamSublayer(sub), isKvSublayer(sub));
        params += isParamSublayer(sub);
        kv += isKvSublayer(sub);
    }
    EXPECT_EQ(params, 4);
    EXPECT_EQ(kv, 2);
}

TEST(SublayerTest, GqaShrinksKvOperandNotCompute)
{
    // Llama2-70B's 8 kv heads cut the K/V cache 8x but queries still
    // attend with all 64 heads.
    const auto m = llama2_70b();
    Workload w{Stage::Decode, 8, 1024};
    const auto c = sublayerCosts(m, w, Sublayer::AttnScoreQK);
    EXPECT_DOUBLE_EQ(c.dY, kBe * 8 * 1024 * (8 * 128));
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 8 * 1024 * 8192);
}

TEST(SublayerTest, GatedFfnDoublesFc1Parameters)
{
    const auto llama = llama2_70b();
    Workload w{Stage::Decode, 1, 128};
    const auto c = sublayerCosts(llama, w, Sublayer::Fc1);
    EXPECT_DOUBLE_EQ(c.dY, kBe * 2.0 * 8192 * 28672);
}

TEST(SublayerTest, MoeLosesIntensityAsTokensGrow)
{
    // §7.1: with more experts touched, FFN ops/byte shrinks.
    const auto moe = moeMixtral8x7b();
    Workload small{Stage::Decode, 1, 128};
    Workload large{Stage::Decode, 64, 128};
    const double opb_small =
        sublayerCosts(moe, small, Sublayer::Fc1).opsPerByte();
    const double opb_large_per_token =
        sublayerCosts(moe, large, Sublayer::Fc1).opsPerByte();
    // Dense models would keep per-token intensity 64x higher at B=64;
    // the MoE gains far less because all 8 experts get touched.
    const auto dense = opt175b();
    const double dense_ratio =
        sublayerCosts(dense, large, Sublayer::Fc1).opsPerByte() /
        sublayerCosts(dense, small, Sublayer::Fc1).opsPerByte();
    const double moe_ratio = opb_large_per_token / opb_small;
    EXPECT_LT(moe_ratio, dense_ratio * 0.5);
}

TEST(SublayerTest, WorkloadTokensPerStage)
{
    Workload prefill{Stage::Prefill, 4, 100};
    Workload decode{Stage::Decode, 4, 100};
    EXPECT_EQ(prefill.tokens(), 100);
    EXPECT_EQ(decode.tokens(), 1);
}

TEST(SublayerTest, LayerAggregatesArePositiveAndAdditive)
{
    const auto m = opt30b();
    Workload w{Stage::Prefill, 4, 64};
    double flops = 0, bytes = 0;
    for (auto sub : allSublayers()) {
        flops += sublayerCosts(m, w, sub).flops;
        bytes += sublayerCosts(m, w, sub).dY;
    }
    EXPECT_DOUBLE_EQ(layerFlops(m, w), flops);
    EXPECT_DOUBLE_EQ(layerBytesRead(m, w), bytes);
    EXPECT_GT(flops, 0);
}

} // namespace
