/**
 * @file
 * Tests for inference memory footprint accounting.
 */

#include <gtest/gtest.h>

#include "model/footprint.hh"

namespace {

using namespace lia::model;

TEST(FootprintTest, Opt175bSingleBatchNear330GB)
{
    // §1 / §6: OPT-175B with B=1, L~1024 needs ~330 GB.
    const auto f = inferenceFootprint(opt175b(), 1, 1024, 32);
    EXPECT_NEAR(f.total(), 360e9, 40e9);
    EXPECT_GT(f.paramBytes, 0.9 * f.total());
}

TEST(FootprintTest, Opt175bBatch256Near1p6TB)
{
    // §1: B=256 at L=1024 raises the demand to ~1.6 TB.
    const auto f = inferenceFootprint(opt175b(), 256, 1024, 32);
    EXPECT_NEAR(f.total(), 1.6e12, 0.25e12);
}

TEST(FootprintTest, Opt175bBatch1024L256Near1p4TB)
{
    // §6: B=1024, L=256 requires ~1.4 TB.
    const auto f = inferenceFootprint(opt175b(), 1024, 256, 32);
    EXPECT_NEAR(f.total(), 1.5e12, 0.3e12);
}

TEST(FootprintTest, KvCacheScalesLinearlyInBatchAndContext)
{
    const auto m = opt30b();
    const double base = kvCacheBytes(m, 4, 128);
    EXPECT_DOUBLE_EQ(kvCacheBytes(m, 8, 128), 2.0 * base);
    EXPECT_DOUBLE_EQ(kvCacheBytes(m, 4, 256), 2.0 * base);
}

TEST(FootprintTest, KvPlusActivationNear145GBForFlexGenCase)
{
    // §3.1: at B=32 the KV cache + activations reach ~145 GB. The
    // exact value depends on L; check the right order of magnitude at
    // the top of the swept range.
    const auto m = opt175b();
    const double kv = kvCacheBytes(m, 32, 1024 + 32);
    const double act = activationBytes(m, 32, 1024);
    EXPECT_NEAR(kv + act, 145e9, 40e9);
}

TEST(FootprintTest, MaxBatchInverseOfFootprint)
{
    const auto m = opt30b();
    const double cap = 512e9;
    const auto b = maxBatchForCapacity(m, 256, 32, cap);
    ASSERT_GT(b, 0);
    // b fits, b+1 does not.
    EXPECT_LE(inferenceFootprint(m, b, 256, 32).total(), cap);
    EXPECT_GT(inferenceFootprint(m, b + 1, 256, 32).total(), cap);
}

TEST(FootprintTest, ExcludingParamsRaisesMaxBatch)
{
    // The §6 CXL placement frees the parameter bytes from DDR,
    // admitting a larger batch under the *same DDR footprint*
    // (Table 3: B=900 -> 1580 at L_in = L_out = 32).
    const auto m = opt30b();
    const double same_ddr_footprint =
        inferenceFootprint(m, 900, 32, 32).total();
    const auto without_params =
        maxBatchForCapacity(m, 32, 32, same_ddr_footprint, false);
    const double ratio = static_cast<double>(without_params) / 900.0;
    // Paper observes 900 -> 1580, i.e. ~1.76x.
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 2.1);
}

TEST(FootprintTest, ZeroCapacityMeansZeroBatch)
{
    EXPECT_EQ(maxBatchForCapacity(opt30b(), 256, 32, 1e9), 0);
}

TEST(FootprintTest, ActivationUsesWidestBoundary)
{
    const auto m = opt30b();  // ffn = 4d is the widest
    EXPECT_DOUBLE_EQ(activationBytes(m, 2, 8),
                     2.0 * 2.0 * 2 * 8 * 4 * 7168);
}

} // namespace
