/**
 * @file
 * Unit tests for the dense tensor.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "runtime/tensor.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

TEST(TensorTest, ZeroInitialised)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            EXPECT_EQ(t.at(i, j), 0.0f);
}

TEST(TensorTest, RowMajorLayout)
{
    Tensor t({2, 3});
    t.at(1, 2) = 5.0f;
    EXPECT_EQ(t.data()[5], 5.0f);
    Tensor u({2, 2, 2});
    u.at(1, 0, 1) = 7.0f;
    EXPECT_EQ(u.data()[5], 7.0f);
}

TEST(TensorTest, CloneIsDeep)
{
    Tensor t({2});
    t.at(0) = 1.0f;
    Tensor c = t.clone();
    c.at(0) = 9.0f;
    EXPECT_EQ(t.at(0), 1.0f);
}

TEST(TensorTest, ReshapePreservesData)
{
    Tensor t({2, 3});
    t.at(1, 1) = 4.0f;
    const Tensor r = t.reshaped({6});
    EXPECT_EQ(r.at(4), 4.0f);
    EXPECT_EQ(r.ndim(), 1u);
}

TEST(TensorTest, ReshapeRejectsWrongCount)
{
    detail::setThrowOnError(true);
    Tensor t({2, 3});
    EXPECT_THROW(t.reshaped({5}), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(TensorTest, OutOfBoundsPanics)
{
    detail::setThrowOnError(true);
    Tensor t({2, 3});
    EXPECT_THROW(t.at(2, 0), std::logic_error);
    EXPECT_THROW(t.at(0, 3), std::logic_error);
    EXPECT_THROW(t.at(0), std::logic_error);  // wrong arity
    detail::setThrowOnError(false);
}

TEST(TensorTest, RandomNormalIsDeterministic)
{
    Rng a(42), b(42);
    const Tensor x = Tensor::randomNormal({100}, a, 1.0);
    const Tensor y = Tensor::randomNormal({100}, b, 1.0);
    EXPECT_EQ(x.maxAbsDiff(y), 0.0);
}

TEST(TensorTest, RoundBf16BoundsError)
{
    Rng rng(1);
    Tensor t = Tensor::randomNormal({1000}, rng, 1.0);
    const Tensor orig = t.clone();
    t.roundBf16();
    EXPECT_LT(t.maxAbsDiff(orig), 0.05);
    EXPECT_GT(t.maxAbsDiff(orig), 0.0);
}

TEST(TensorTest, Bf16BytesCountsTwoPerElement)
{
    Tensor t({4, 5});
    EXPECT_DOUBLE_EQ(t.bf16Bytes(), 40.0);
}

TEST(TensorTest, MaxAbsDiffShapeMismatchPanics)
{
    detail::setThrowOnError(true);
    Tensor a({2}), b({3});
    EXPECT_THROW(a.maxAbsDiff(b), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(TensorTest, EmptyTensorBehaviour)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.numel(), 0);
}

TEST(TensorTest, ZeroDimensionRejected)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(Tensor({2, 0}), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
