/**
 * @file
 * Property suite for the blocked/parallel kernel layer's determinism
 * contract (DESIGN.md §7).
 *
 * Random GEMM shapes — including m=1 decode rows and ragged k/n that
 * leave partial column tiles — run through matmul, matmulPacked, and
 * matmulTransposed at thread pools of 1, 2, and the host default, and
 * every output must equal the retained scalar reference EXACTLY (bit
 * for bit, not within a tolerance): blocking, packing, and threading
 * are layout/schedule changes only. The row-wise and elementwise
 * kernels get the same treatment, and a full greedy decode across
 * executors pinned to different pools must emit identical tokens.
 *
 * Scenario count scales with LIA_PROPERTY_SCENARIOS (the nightly CI
 * job raises it past the default ~200 shapes).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "runtime/executor.hh"
#include "runtime/kernels.hh"

namespace {

using namespace lia;
using namespace lia::runtime;
using base::ThreadPool;

std::size_t
shapeCount()
{
    if (const char *env = std::getenv("LIA_PROPERTY_SCENARIOS")) {
        const long scenarios = std::atol(env);
        if (scenarios > 0)
            return static_cast<std::size_t>(scenarios);
    }
    return 200;
}

/** Bit-for-bit tensor equality (memcmp, so -0.0 != +0.0 and any NaN
 *  payload difference would fail — exactly the contract). */
bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) *
                           static_cast<std::size_t>(a.numel())) == 0;
}

/** The pools every kernel must agree across: serial inline, two
 *  workers, and the host default (whatever LIA_THREADS says). */
std::vector<std::shared_ptr<ThreadPool>>
contractPools()
{
    std::vector<std::shared_ptr<ThreadPool>> pools;
    pools.push_back(nullptr);  // inline serial path
    pools.push_back(std::make_shared<ThreadPool>(1));
    pools.push_back(std::make_shared<ThreadPool>(2));
    const int host = ThreadPool::defaultThreadCount();
    if (host > 2)
        pools.push_back(std::make_shared<ThreadPool>(host));
    return pools;
}

struct GemmShape
{
    std::int64_t m, k, n;
};

/**
 * Shape generator biased toward the hard cases: m=1 decode rows,
 * m in the row-partition regime (>= 4), k/n that are not multiples
 * of the pack tile width (partial final tile), and tiny extents.
 */
GemmShape
randomShape(std::mt19937_64 &gen)
{
    std::uniform_int_distribution<int> mKind(0, 3);
    std::uniform_int_distribution<std::int64_t> mBig(2, 33);
    std::uniform_int_distribution<std::int64_t> kAny(1, 70);
    std::uniform_int_distribution<std::int64_t> nAny(1, 70);
    GemmShape s;
    switch (mKind(gen)) {
    case 0: s.m = 1; break;                    // decode
    case 1: s.m = 4; break;                    // row-partition floor
    default: s.m = mBig(gen); break;
    }
    s.k = kAny(gen);
    s.n = nAny(gen);
    return s;
}

TEST(KernelParallelProperty, GemmsMatchScalarReferenceBitForBit)
{
    const auto pools = contractPools();
    std::mt19937_64 gen(20250806);
    std::uniform_int_distribution<int> coin(0, 1);

    const std::size_t shapes = shapeCount();
    for (std::size_t it = 0; it < shapes; ++it) {
        const GemmShape s = randomShape(gen);
        Rng rng(static_cast<std::uint64_t>(1000 + it));
        const Tensor a = Tensor::randomNormal({s.m, s.k}, rng, 1.0);
        const Tensor b = Tensor::randomNormal({s.k, s.n}, rng, 1.0);
        const Tensor bt = [&] {
            Tensor t({s.n, s.k});
            for (std::int64_t i = 0; i < s.n; ++i)
                for (std::int64_t c = 0; c < s.k; ++c)
                    t.at(i, c) = b.at(c, i);
            return t;
        }();
        Tensor bias;
        if (coin(gen)) {
            Rng brng(static_cast<std::uint64_t>(5000 + it));
            bias = Tensor::randomNormal({s.n}, brng, 1.0);
        }
        const bool round = coin(gen) != 0;

        const KernelOptions serial{round, nullptr};
        const Tensor ref = scalarMatmul(a, b, bias, serial);
        const Tensor refT = scalarMatmulTransposed(a, bt, serial);
        const PackedMatrix packed = packColumns(b);
        const PackedMatrix packedT = packTransposed(bt);

        for (const auto &pool : pools) {
            const KernelOptions opts{round, pool.get()};
            const int threads = pool ? pool->threadCount() : 0;
            ASSERT_TRUE(bitIdentical(matmul(a, b, bias, opts), ref))
                << "matmul " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
            ASSERT_TRUE(
                bitIdentical(matmulPacked(a, packed, bias, opts), ref))
                << "matmulPacked " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
            ASSERT_TRUE(
                bitIdentical(matmulPacked(a, packedT, bias, opts), ref))
                << "matmulPacked(transposed pack) " << s.m << "x" << s.k
                << "x" << s.n << " at " << threads << " threads";
            ASSERT_TRUE(
                bitIdentical(matmulTransposed(a, bt, opts), refT))
                << "matmulTransposed " << s.m << "x" << s.k << "x"
                << s.n << " at " << threads << " threads";
        }
    }
}

TEST(KernelParallelProperty, RowAndElementwiseKernelsMatchSerial)
{
    const auto pools = contractPools();
    std::mt19937_64 gen(77);
    std::uniform_int_distribution<std::int64_t> rows(1, 40);
    std::uniform_int_distribution<std::int64_t> cols(1, 130);
    std::uniform_int_distribution<std::int64_t> off(0, 8);

    const std::size_t iters = shapeCount() / 4 + 8;
    for (std::size_t it = 0; it < iters; ++it) {
        const std::int64_t m = rows(gen), n = cols(gen);
        Rng rng(static_cast<std::uint64_t>(9000 + it));
        const Tensor x = Tensor::randomNormal({m, n}, rng, 2.0);
        const Tensor g = Tensor::randomNormal({n}, rng, 1.0);
        const Tensor bb = Tensor::randomNormal({n}, rng, 1.0);
        const Tensor other = Tensor::randomNormal({m, n}, rng, 1.0);
        const std::int64_t offset = off(gen);

        const KernelOptions serial{true, nullptr};
        const Tensor ln_ref = layerNorm(x, g, bb, serial);
        Tensor sm_ref = x.clone();
        softmaxRows(sm_ref, serial);
        Tensor csm_ref = x.clone();
        causalSoftmaxRows(csm_ref, offset, serial);
        Tensor relu_ref = x.clone();
        reluInPlace(relu_ref, serial);
        Tensor silu_ref = x.clone();
        siluInPlace(silu_ref, serial);
        Tensor mul_ref = x.clone();
        mulInPlace(mul_ref, other, serial);
        const Tensor add_ref = add(x, other, serial);

        for (const auto &pool : pools) {
            if (!pool)
                continue;
            const KernelOptions opts{true, pool.get()};
            ASSERT_TRUE(bitIdentical(layerNorm(x, g, bb, opts), ln_ref));
            Tensor sm = x.clone();
            softmaxRows(sm, opts);
            ASSERT_TRUE(bitIdentical(sm, sm_ref));
            Tensor csm = x.clone();
            causalSoftmaxRows(csm, offset, opts);
            ASSERT_TRUE(bitIdentical(csm, csm_ref));
            Tensor relu = x.clone();
            reluInPlace(relu, opts);
            ASSERT_TRUE(bitIdentical(relu, relu_ref));
            Tensor silu = x.clone();
            siluInPlace(silu, opts);
            ASSERT_TRUE(bitIdentical(silu, silu_ref));
            Tensor mul = x.clone();
            mulInPlace(mul, other, opts);
            ASSERT_TRUE(bitIdentical(mul, mul_ref));
            ASSERT_TRUE(bitIdentical(add(x, other, opts), add_ref));
        }
    }
}

TEST(KernelParallelProperty, GreedyDecodeIdenticalAcrossPoolSizes)
{
    // End-to-end anchor: three executors over the same seed-1234
    // weights, pinned to 1/2/4-thread pools, must emit the exact same
    // greedy token streams — the whole layer stack obeys §7, not just
    // the isolated kernels.
    const std::vector<std::vector<std::int64_t>> prompts = {
        {1, 4, 7, 10, 13, 16, 19, 22},
        {8, 15, 22, 29, 36, 43, 50, 57},
    };
    std::vector<std::vector<std::vector<std::int64_t>>> streams;
    for (const int threads : {1, 2, 4}) {
        Rng rng(1234);
        ExecutorConfig cfg;
        cfg.pool = std::make_shared<ThreadPool>(threads);
        CooperativeExecutor exec(
            hw::sprA100(),
            TransformerWeights::random(model::tinyOpt(), rng), cfg);
        streams.push_back(exec.generate(prompts, 12));
    }
    EXPECT_EQ(streams[0], streams[1])
        << "decode diverged between 1 and 2 threads";
    EXPECT_EQ(streams[0], streams[2])
        << "decode diverged between 1 and 4 threads";
}

} // namespace
