/**
 * @file
 * Unit tests for the numeric kernels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <limits>
#include <stdexcept>

#include "base/logging.hh"
#include "base/rng.hh"
#include "runtime/kernels.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

const KernelOptions kExact{false};  // fp32, no BF16 rounding

TEST(MatmulTest, TwoByTwoKnownResult)
{
    Tensor a({2, 2});
    a.at(0, 0) = 1; a.at(0, 1) = 2;
    a.at(1, 0) = 3; a.at(1, 1) = 4;
    Tensor b({2, 2});
    b.at(0, 0) = 5; b.at(0, 1) = 6;
    b.at(1, 0) = 7; b.at(1, 1) = 8;
    const Tensor c = matmul(a, b, Tensor(), kExact);
    EXPECT_EQ(c.at(0, 0), 19);
    EXPECT_EQ(c.at(0, 1), 22);
    EXPECT_EQ(c.at(1, 0), 43);
    EXPECT_EQ(c.at(1, 1), 50);
}

TEST(MatmulTest, IdentityIsNeutral)
{
    Rng rng(1);
    const Tensor a = Tensor::randomNormal({4, 4}, rng, 1.0);
    Tensor eye({4, 4});
    for (int i = 0; i < 4; ++i)
        eye.at(i, i) = 1.0f;
    const Tensor c = matmul(a, eye, Tensor(), kExact);
    EXPECT_EQ(c.maxAbsDiff(a), 0.0);
}

TEST(MatmulTest, BiasBroadcastsOverRows)
{
    Tensor a({2, 1});
    a.at(0, 0) = 1;
    a.at(1, 0) = 2;
    Tensor b({1, 2});
    b.at(0, 0) = 10;
    b.at(0, 1) = 20;
    Tensor bias({2});
    bias.at(0) = 1;
    bias.at(1) = -1;
    const Tensor c = matmul(a, b, bias, kExact);
    EXPECT_EQ(c.at(0, 0), 11);
    EXPECT_EQ(c.at(0, 1), 19);
    EXPECT_EQ(c.at(1, 0), 21);
    EXPECT_EQ(c.at(1, 1), 39);
}

TEST(MatmulTest, TransposedAgreesWithExplicitTranspose)
{
    Rng rng(2);
    const Tensor a = Tensor::randomNormal({3, 5}, rng, 1.0);
    const Tensor b = Tensor::randomNormal({4, 5}, rng, 1.0);
    Tensor bt({5, 4});
    for (int i = 0; i < 4; ++i)
        for (int k = 0; k < 5; ++k)
            bt.at(k, i) = b.at(i, k);
    const Tensor c1 = matmulTransposed(a, b, kExact);
    const Tensor c2 = matmul(a, bt, Tensor(), kExact);
    EXPECT_LT(c1.maxAbsDiff(c2), 1e-5);
}

TEST(SoftmaxTest, RowsSumToOne)
{
    Rng rng(3);
    Tensor t = Tensor::randomNormal({8, 16}, rng, 2.0);
    softmaxRows(t, kExact);
    for (int i = 0; i < 8; ++i) {
        float sum = 0;
        for (int j = 0; j < 16; ++j) {
            sum += t.at(i, j);
            EXPECT_GE(t.at(i, j), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(SoftmaxTest, InvariantToRowShift)
{
    Tensor a({1, 3});
    a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
    Tensor b = a.clone();
    for (int j = 0; j < 3; ++j)
        b.at(0, j) += 100.0f;
    softmaxRows(a, kExact);
    softmaxRows(b, kExact);
    EXPECT_LT(a.maxAbsDiff(b), 1e-5);
}

TEST(SoftmaxTest, CausalMaskZeroesFuture)
{
    Rng rng(4);
    Tensor t = Tensor::randomNormal({4, 4}, rng, 1.0);
    causalSoftmaxRows(t, 0, kExact);  // row i sees columns 0..i
    for (int i = 0; i < 4; ++i) {
        float sum = 0;
        for (int j = 0; j < 4; ++j) {
            if (j > i) {
                EXPECT_EQ(t.at(i, j), 0.0f);
            }
            sum += t.at(i, j);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(SoftmaxTest, DecodeOffsetSeesWholeHistory)
{
    Rng rng(5);
    Tensor t = Tensor::randomNormal({1, 8}, rng, 1.0);
    causalSoftmaxRows(t, 7, kExact);  // one query, 8-token history
    for (int j = 0; j < 8; ++j)
        EXPECT_GT(t.at(0, j), 0.0f);
}

TEST(LayerNormTest, NormalisesToZeroMeanUnitVar)
{
    Rng rng(6);
    const Tensor x = Tensor::randomNormal({4, 64}, rng, 5.0);
    Tensor gain({64}), bias({64});
    for (int j = 0; j < 64; ++j)
        gain.at(j) = 1.0f;
    const Tensor y = layerNorm(x, gain, bias, kExact);
    for (int i = 0; i < 4; ++i) {
        float mean = 0, var = 0;
        for (int j = 0; j < 64; ++j)
            mean += y.at(i, j);
        mean /= 64;
        for (int j = 0; j < 64; ++j)
            var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
        var /= 64;
        EXPECT_NEAR(mean, 0.0f, 1e-4);
        EXPECT_NEAR(var, 1.0f, 1e-2);
    }
}

TEST(LayerNormTest, GainAndBiasApplied)
{
    Tensor x({1, 2});
    x.at(0, 0) = -1;
    x.at(0, 1) = 1;
    Tensor gain({2}), bias({2});
    gain.at(0) = 2; gain.at(1) = 2;
    bias.at(0) = 5; bias.at(1) = 5;
    const Tensor y = layerNorm(x, gain, bias, kExact);
    EXPECT_NEAR(y.at(0, 0), 5.0f - 2.0f, 1e-3);
    EXPECT_NEAR(y.at(0, 1), 5.0f + 2.0f, 1e-3);
}

TEST(ReluTest, ClampsNegatives)
{
    Tensor t({4});
    t.at(0) = -1; t.at(1) = 2; t.at(2) = -0.5; t.at(3) = 0;
    reluInPlace(t, kExact);
    EXPECT_EQ(t.at(0), 0.0f);
    EXPECT_EQ(t.at(1), 2.0f);
    EXPECT_EQ(t.at(2), 0.0f);
    EXPECT_EQ(t.at(3), 0.0f);
}

TEST(AddTest, ElementwiseSum)
{
    Tensor a({2}), b({2});
    a.at(0) = 1; a.at(1) = 2;
    b.at(0) = 10; b.at(1) = 20;
    const Tensor c = add(a, b, kExact);
    EXPECT_EQ(c.at(0), 11.0f);
    EXPECT_EQ(c.at(1), 22.0f);
}

TEST(ArgmaxTest, PicksRowMaximum)
{
    Tensor t({2, 3});
    t.at(0, 1) = 5.0f;
    t.at(1, 2) = 3.0f;
    const auto idx = argmaxRows(t);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 2);
}

TEST(ArgmaxTest, TiesResolveToFirstIndex)
{
    // Greedy decode depends on deterministic tie-breaking: the lowest
    // index holding the maximum wins, wherever the duplicates sit.
    Tensor t({3, 4});
    t.at(0, 1) = 2.0f; t.at(0, 3) = 2.0f;           // interior tie
    t.at(1, 0) = 7.0f; t.at(1, 1) = 7.0f;
    t.at(1, 2) = 7.0f; t.at(1, 3) = 7.0f;           // all-equal row
    /* row 2 all zeros: a degenerate all-equal tie too */
    const auto idx = argmaxRows(t);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 0);
    EXPECT_EQ(idx[2], 0);
}

TEST(ArgmaxTest, NanLogitsNeverWin)
{
    // A sequence whose logits blow up must not kill the server: NaN
    // entries are skipped deterministically, wherever they sit.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    Tensor t({3, 3});
    t.at(0, 0) = nan; t.at(0, 1) = -2.0f; t.at(0, 2) = -5.0f;
    t.at(1, 0) = 1.0f; t.at(1, 1) = nan; t.at(1, 2) = 4.0f;
    t.at(2, 0) = nan; t.at(2, 1) = nan; t.at(2, 2) = nan;
    const auto idx = argmaxRows(t);
    EXPECT_EQ(idx[0], 1);  // NaN in the initial slot never poisons
    EXPECT_EQ(idx[1], 2);
    EXPECT_EQ(idx[2], 0);  // all-NaN row: defined fallback index
}

TEST(KernelTest, Bf16RoundingChangesResultsSlightly)
{
    Rng rng(7);
    const Tensor a = Tensor::randomNormal({16, 32}, rng, 1.0);
    const Tensor b = Tensor::randomNormal({32, 16}, rng, 1.0);
    const Tensor exact = matmul(a, b, Tensor(), kExact);
    const Tensor rounded = matmul(a, b, Tensor(), KernelOptions{true});
    const double diff = exact.maxAbsDiff(rounded);
    EXPECT_GT(diff, 0.0);
    EXPECT_LT(diff, 0.1);
}

TEST(MatmulTest, InnerDimensionMismatchPanics)
{
    lia::detail::setThrowOnError(true);
    Tensor a({2, 3}), b({4, 2});
    EXPECT_THROW(matmul(a, b, Tensor(), kExact), std::logic_error);
    lia::detail::setThrowOnError(false);
}

} // namespace
