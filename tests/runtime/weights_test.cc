/**
 * @file
 * Unit tests for transformer weight containers.
 */

#include <gtest/gtest.h>

#include "runtime/weights.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

TEST(WeightsTest, ShapesFollowConfig)
{
    Rng rng(1);
    const auto m = model::tinyOpt(64, 4, 4, 128, 256);
    const auto w = TransformerWeights::random(m, rng);
    ASSERT_EQ(w.layers.size(), 4u);
    EXPECT_EQ(w.embedding.dim(0), 256);
    EXPECT_EQ(w.embedding.dim(1), 64);
    EXPECT_EQ(w.posEmbedding.dim(0), 128);
    const auto &l = w.layers[0];
    EXPECT_EQ(l.wq.dim(0), 64);
    EXPECT_EQ(l.wq.dim(1), 64);
    EXPECT_EQ(l.w1.dim(1), 256);  // ffn = 4d
    EXPECT_EQ(l.w2.dim(0), 256);
}

TEST(WeightsTest, DeterministicFromSeed)
{
    const auto m = model::tinyOpt();
    Rng a(9), b(9);
    const auto w1 = TransformerWeights::random(m, a);
    const auto w2 = TransformerWeights::random(m, b);
    EXPECT_EQ(w1.layers[2].w1.maxAbsDiff(w2.layers[2].w1), 0.0);
}

TEST(WeightsTest, LayerBytesCloseToAnalyticalModel)
{
    // The runtime's actual tensor bytes should track the analytical
    // decoderLayerParamBytes (biases and norms add a little).
    Rng rng(2);
    const auto m = model::tinyOpt();
    const auto w = TransformerWeights::random(m, rng);
    const double actual = w.layers[0].bf16Bytes();
    const double analytical = m.decoderLayerParamBytes();
    EXPECT_NEAR(actual, analytical, 0.05 * analytical);
    EXPECT_GE(actual, analytical);  // extras only add
}

TEST(WeightsTest, SublayerBytesPartitionMatrixWeights)
{
    Rng rng(3);
    const auto m = model::tinyOpt();
    const auto w = TransformerWeights::random(m, rng);
    const auto &l = w.layers[0];
    double sum = 0;
    for (int i = 0; i < 6; ++i)
        sum += l.sublayerBf16Bytes(i);
    // Attention-scoring sublayers carry no weights.
    EXPECT_EQ(l.sublayerBf16Bytes(1), 0.0);
    EXPECT_EQ(l.sublayerBf16Bytes(2), 0.0);
    // The sum is the layer total minus the LayerNorm parameters.
    const double norms = l.lnAttnGain.bf16Bytes() +
                         l.lnAttnBias.bf16Bytes() +
                         l.lnFfnGain.bf16Bytes() +
                         l.lnFfnBias.bf16Bytes();
    EXPECT_NEAR(sum + norms, l.bf16Bytes(), 1e-6);
}

TEST(WeightsTest, LayerNormGainsInitialisedToOne)
{
    Rng rng(4);
    const auto w = TransformerWeights::random(model::tinyOpt(), rng);
    EXPECT_EQ(w.layers[0].lnAttnGain.at(0), 1.0f);
    EXPECT_EQ(w.lnFinalGain.at(5), 1.0f);
}

TEST(WeightsTest, TotalBytesIncludeEmbeddings)
{
    Rng rng(5);
    const auto m = model::tinyOpt();
    const auto w = TransformerWeights::random(m, rng);
    double layer_sum = 0;
    for (const auto &l : w.layers)
        layer_sum += l.bf16Bytes();
    EXPECT_GT(w.bf16Bytes(), layer_sum);
}

} // namespace

namespace {

using namespace lia;
using namespace lia::runtime;

TEST(QuantizeWeightsTest, Int8ChangesWeightsSlightly)
{
    Rng rng(6);
    const auto m = model::tinyOpt();
    auto w = TransformerWeights::random(m, rng);
    const Tensor original = w.layers[0].w1.clone();
    quantizeWeights(w, model::WeightPrecision::Int8);
    const double diff = w.layers[0].w1.maxAbsDiff(original);
    EXPECT_GT(diff, 0.0);
    EXPECT_LT(diff, 0.01);  // ~absmax/254 for unit-scale weights
    EXPECT_DOUBLE_EQ(w.config.weightBytesPerElement, 1.0);
}

TEST(QuantizeWeightsTest, Int4CoarserThanInt8)
{
    const auto m = model::tinyOpt();
    Rng r1(6), r2(6);
    auto w8 = TransformerWeights::random(m, r1);
    auto w4 = TransformerWeights::random(m, r2);
    const Tensor original = w8.layers[1].wq.clone();
    quantizeWeights(w8, model::WeightPrecision::Int8);
    quantizeWeights(w4, model::WeightPrecision::Int4);
    EXPECT_GT(w4.layers[1].wq.maxAbsDiff(original),
              w8.layers[1].wq.maxAbsDiff(original));
}

TEST(QuantizeWeightsTest, Bf16IsANoOp)
{
    Rng rng(6);
    auto w = TransformerWeights::random(model::tinyOpt(), rng);
    const Tensor original = w.layers[0].w2.clone();
    quantizeWeights(w, model::WeightPrecision::Bf16);
    EXPECT_EQ(w.layers[0].w2.maxAbsDiff(original), 0.0);
}

TEST(QuantizeWeightsTest, QuantizationIsIdempotent)
{
    Rng rng(8);
    auto w = TransformerWeights::random(model::tinyOpt(), rng);
    quantizeWeights(w, model::WeightPrecision::Int8);
    const Tensor once = w.layers[0].w1.clone();
    // Re-quantizing values already on the grid must not move them.
    auto w2 = w;
    quantizeWeights(w2, model::WeightPrecision::Int8);
    EXPECT_LT(w2.layers[0].w1.maxAbsDiff(once), 1e-6);
}

TEST(Int8PackPlacementTest, ViableProjectionsGetInt8PacksOnly)
{
    // Per-tensor placement (DESIGN.md §12): at Int8 every viable
    // projection materialises its int8 tile pack INSTEAD of the fp32
    // pack — never both — and the tied LM head always stays fp32.
    Rng rng(11);
    const auto m = model::quantized(model::tinyOpt(),
                                    model::WeightPrecision::Int8);
    auto w = TransformerWeights::random(m, rng);
    w.pack(model::WeightPrecision::Int8);
    EXPECT_EQ(w.packedPrecision, model::WeightPrecision::Int8);

    for (const auto &l : w.layers) {
        EXPECT_FALSE(l.int8Wq.empty());
        EXPECT_FALSE(l.int8Wk.empty());
        EXPECT_FALSE(l.int8Wv.empty());
        EXPECT_FALSE(l.int8Wo.empty());
        EXPECT_FALSE(l.int8W1.empty());
        EXPECT_FALSE(l.int8W2.empty());
        EXPECT_TRUE(l.packedWq.empty());
        EXPECT_TRUE(l.packedWk.empty());
        EXPECT_TRUE(l.packedWv.empty());
        EXPECT_TRUE(l.packedWo.empty());
        EXPECT_TRUE(l.packedW1.empty());
        EXPECT_TRUE(l.packedW2.empty());
        // tinyOpt is ungated: both gate packs stay empty.
        EXPECT_TRUE(l.int8Wg.empty());
        EXPECT_TRUE(l.packedWg.empty());
    }
    // The LM-head exclusion: fp32 pack present, untouched by Int8.
    EXPECT_FALSE(w.packedLmHead.empty());
}

TEST(Int8PackPlacementTest, RepackingAtBf16RestoresFp32Packs)
{
    Rng rng(12);
    auto w = TransformerWeights::random(model::tinyOpt(), rng);
    w.pack(model::WeightPrecision::Int8);
    ASSERT_FALSE(w.layers[0].int8Wq.empty());
    w.pack(model::WeightPrecision::Bf16);
    EXPECT_EQ(w.packedPrecision, model::WeightPrecision::Bf16);
    EXPECT_TRUE(w.layers[0].int8Wq.empty());
    EXPECT_FALSE(w.layers[0].packedWq.empty());
}

TEST(Int8PackPlacementTest, StoredBytesFollowThePrecision)
{
    Rng rng(13);
    const auto base = model::tinyOpt();
    const auto w16 = TransformerWeights::random(base, rng);
    // Unquantized: storedBytes is exactly the BF16 footprint.
    EXPECT_EQ(w16.storedBytes(), w16.bf16Bytes());

    Rng rng8(13);
    const auto m8 = model::quantized(base, model::WeightPrecision::Int8);
    auto w8 = TransformerWeights::random(m8, rng8);
    // Int8 stores the projection matrices one byte per element
    // instead of two: exactly matrixElements() fewer bytes.
    double matrix_elems = 0;
    for (const auto &l : w8.layers)
        matrix_elems += l.matrixElements();
    EXPECT_DOUBLE_EQ(w8.storedBytes(),
                     w8.bf16Bytes() - matrix_elems);

    // And the real packed buffers stay within a few percent of that
    // analytic figure (tile scales + padding are the only overhead).
    w8.pack(model::WeightPrecision::Int8);
    EXPECT_NEAR(w8.int8PackedBytes(), matrix_elems,
                0.02 * matrix_elems);
}

} // namespace
