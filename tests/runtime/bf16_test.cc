/**
 * @file
 * Unit tests for BF16 emulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "runtime/bf16.hh"

namespace {

using namespace lia::runtime;

TEST(Bf16Test, ExactValuesSurvive)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 256.0f, -0.25f})
        EXPECT_EQ(roundToBf16(v), v);
}

TEST(Bf16Test, RoundTripThroughPackedForm)
{
    lia::Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const float v = static_cast<float>(rng.normal(0, 10));
        const float rounded = roundToBf16(v);
        EXPECT_EQ(unpackBf16(packBf16(v)), rounded);
    }
}

TEST(Bf16Test, RoundingIsIdempotent)
{
    lia::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const float v = static_cast<float>(rng.normal(0, 1));
        const float once = roundToBf16(v);
        EXPECT_EQ(roundToBf16(once), once);
    }
}

TEST(Bf16Test, RelativeErrorWithinMantissaBound)
{
    // BF16 has 8 significand bits: relative error <= 2^-8.
    lia::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const float v = static_cast<float>(rng.uniform(0.1, 100.0));
        const float r = roundToBf16(v);
        EXPECT_LE(std::fabs(r - v) / v, 1.0 / 256.0);
    }
}

TEST(Bf16Test, RoundsToNearestEven)
{
    // 1 + 2^-8 sits exactly between 1.0 and the next BF16 value
    // 1 + 2^-7; ties round to the even significand (1.0).
    const float tie = 1.0f + std::ldexp(1.0f, -8);
    EXPECT_EQ(roundToBf16(tie), 1.0f);
    // Just above the tie rounds up.
    const float above = 1.0f + std::ldexp(1.2f, -8);
    EXPECT_EQ(roundToBf16(above), 1.0f + std::ldexp(1.0f, -7));
}

TEST(Bf16Test, SignPreserved)
{
    EXPECT_EQ(roundToBf16(-3.14159f), -roundToBf16(3.14159f));
}

TEST(Bf16Test, PackedFormIsSixteenBits)
{
    EXPECT_EQ(packBf16(1.0f), 0x3F80u);
    EXPECT_EQ(unpackBf16(0x3F80u), 1.0f);
}

} // namespace
