/**
 * @file
 * Golden-output regression for greedy decoding.
 *
 * Pins the exact greedy token stream of the runtime stack — embed,
 * layer forwards, runtime::Sampler argmax — for fixed synthetic
 * weights (seed 1234) and fixed prompts. Any numeric drift anywhere in
 * the kernels, the BF16 rounding emulation, tie-breaking in the
 * sampler, or the per-sequence serving entry points changes these IDs
 * and fails loudly. The expected streams were produced by this very
 * stack and are regression anchors, not external truth.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/system.hh"
#include "model/config.hh"
#include "runtime/executor.hh"
#include "runtime/kv_cache.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

constexpr std::uint64_t kWeightSeed = 1234;

CooperativeExecutor
goldenExecutor()
{
    Rng rng(kWeightSeed);
    return CooperativeExecutor(
        hw::sprA100(),
        TransformerWeights::random(model::tinyOpt(), rng), {});
}

/** Fixed prompts: affine token patterns over the tiny vocabulary. */
std::vector<std::vector<std::int64_t>>
goldenPrompts()
{
    return {
        {1, 4, 7, 10, 13, 16, 19, 22},
        {8, 15, 22, 29, 36, 43, 50, 57},
    };
}

// Greedy continuations of the prompts above under seed-1234 weights.
const std::vector<std::int64_t> kGoldenSeq0 = {
    53, 184, 184, 184, 184, 184, 184, 184, 184, 184, 184, 184,
};
const std::vector<std::int64_t> kGoldenSeq1 = {
    124, 107, 66, 66, 66, 107, 103, 107, 103, 107, 107, 107,
};

TEST(GoldenDecodeTest, GreedyStreamMatchesTheCommittedTokens)
{
    auto exec = goldenExecutor();
    const auto out = goldenPrompts();
    const auto generated =
        exec.generate(out, static_cast<std::int64_t>(
                               kGoldenSeq0.size()));
    ASSERT_EQ(generated.size(), 2u);
    EXPECT_EQ(generated[0], kGoldenSeq0)
        << "sequence 0 drifted from the golden greedy stream";
    EXPECT_EQ(generated[1], kGoldenSeq1)
        << "sequence 1 drifted from the golden greedy stream";
}

TEST(GoldenDecodeTest, PerSequencePathReproducesTheGoldenStream)
{
    // The serving entry points (prefillChunk + decodeOne) must land on
    // the same golden tokens as the batch API.
    auto exec = goldenExecutor();
    const auto prompts = goldenPrompts();
    const std::vector<const std::vector<std::int64_t> *> golden = {
        &kGoldenSeq0, &kGoldenSeq1};

    for (std::size_t s = 0; s < prompts.size(); ++s) {
        KvCache cache(model::tinyOpt(), 1, 64);
        std::vector<std::int64_t> got;
        got.push_back(exec.prefillChunk(cache, prompts[s]));
        while (got.size() < golden[s]->size())
            got.push_back(exec.decodeOne(cache, got.back()));
        EXPECT_EQ(got, *golden[s]) << "sequence " << s;
    }
}

} // namespace
