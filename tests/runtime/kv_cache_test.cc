/**
 * @file
 * Unit tests for the KV cache.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "runtime/kv_cache.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

class KvCacheTest : public ::testing::Test
{
  protected:
    model::ModelConfig m = model::tinyOpt();  // 4 layers, kvDim 64
    KvCache cache{m, 2, 32};

    Tensor
    filled(std::int64_t tokens, float value)
    {
        Tensor t({2, tokens, m.kvDim()});
        for (std::int64_t i = 0; i < t.numel(); ++i)
            t.data()[i] = value;
        return t;
    }

    void
    appendAllLayers(std::int64_t tokens, float value)
    {
        for (std::int64_t l = 0; l < m.numLayers; ++l)
            cache.append(l, filled(tokens, value),
                         filled(tokens, value + 0.5f));
    }
};

TEST_F(KvCacheTest, LengthAdvancesAfterLastLayer)
{
    EXPECT_EQ(cache.length(), 0);
    for (std::int64_t l = 0; l < m.numLayers; ++l) {
        cache.append(l, filled(4, 1.0f), filled(4, 1.0f));
        if (l + 1 < m.numLayers) {
            EXPECT_EQ(cache.length(), 0);
        }
    }
    EXPECT_EQ(cache.length(), 4);
}

TEST_F(KvCacheTest, MidStepReadsIncludePendingTokens)
{
    cache.append(0, filled(4, 2.0f), filled(4, 3.0f));
    // Layer 0's attention (run right after its append) must see the
    // 4 freshly appended tokens.
    const Tensor k = cache.keys(0);
    EXPECT_EQ(k.dim(1), 4);
    EXPECT_EQ(k.at(0, 3, 0), 2.0f);
}

TEST_F(KvCacheTest, ValuesAndKeysStoredSeparately)
{
    appendAllLayers(2, 1.0f);
    EXPECT_EQ(cache.keys(1).at(0, 0, 0), 1.0f);
    EXPECT_EQ(cache.values(1).at(0, 0, 0), 1.5f);
}

TEST_F(KvCacheTest, DecodeAppendsGrowContext)
{
    appendAllLayers(4, 1.0f);
    appendAllLayers(1, 2.0f);
    appendAllLayers(1, 3.0f);
    EXPECT_EQ(cache.length(), 6);
    const Tensor k = cache.keys(0);
    EXPECT_EQ(k.at(1, 3, 5), 1.0f);
    EXPECT_EQ(k.at(1, 4, 5), 2.0f);
    EXPECT_EQ(k.at(1, 5, 5), 3.0f);
}

TEST_F(KvCacheTest, OutOfOrderAppendPanics)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(cache.append(1, filled(1, 0), filled(1, 0)),
                 std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(KvCacheTest, OverflowPanics)
{
    detail::setThrowOnError(true);
    appendAllLayers(32, 1.0f);  // fills max_len
    EXPECT_THROW(cache.append(0, filled(1, 0), filled(1, 0)),
                 std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(KvCacheTest, BatchMismatchPanics)
{
    detail::setThrowOnError(true);
    Tensor wrong({3, 1, m.kvDim()});
    EXPECT_THROW(cache.append(0, wrong, wrong), std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(KvCacheTest, Bf16BytesMatchFormula)
{
    appendAllLayers(4, 1.0f);
    // 2 tensors * B=2 * len=4 * kvDim=64 * layers=4 * 2 bytes.
    EXPECT_DOUBLE_EQ(cache.bf16Bytes(), 2.0 * 2 * 4 * 64 * 4 * 2);
}

// --- Eviction / restoration (the serving preemption entry points) ----

TEST_F(KvCacheTest, EvictFreesExactlyTheHeldBytesAndEmptiesTheCache)
{
    appendAllLayers(4, 1.0f);
    appendAllLayers(1, 2.0f);
    const double held = cache.bf16Bytes();

    KvSnapshot snapshot = cache.evict();
    EXPECT_DOUBLE_EQ(snapshot.bytes, held);
    EXPECT_EQ(snapshot.length, 5);
    EXPECT_FALSE(snapshot.empty());
    EXPECT_EQ(cache.length(), 0);
    EXPECT_DOUBLE_EQ(cache.bf16Bytes(), 0.0);
}

TEST_F(KvCacheTest, RestoreReturnsTheFreedBytesBitIdentically)
{
    appendAllLayers(4, 1.0f);
    appendAllLayers(1, 2.0f);
    const double held = cache.bf16Bytes();
    const std::uint64_t digest = cache.fingerprint();

    KvSnapshot snapshot = cache.evict();
    ASSERT_TRUE(cache.restore(snapshot));
    // Bytes freed match bytes restored, contents are bit-identical,
    // and the snapshot was consumed.
    EXPECT_DOUBLE_EQ(cache.bf16Bytes(), held);
    EXPECT_EQ(cache.length(), 5);
    EXPECT_EQ(cache.fingerprint(), digest);
    EXPECT_TRUE(snapshot.empty());
    EXPECT_EQ(cache.keys(0).at(1, 4, 5), 2.0f);
    EXPECT_EQ(cache.values(0).at(1, 3, 5), 1.5f);
}

TEST_F(KvCacheTest, EvictedCacheRemainsUsableForRecompute)
{
    appendAllLayers(3, 1.0f);
    (void)cache.evict();  // discard = evict-and-recompute exit
    appendAllLayers(3, 4.0f);
    EXPECT_EQ(cache.length(), 3);
    EXPECT_EQ(cache.keys(0).at(0, 2, 0), 4.0f);
}

TEST_F(KvCacheTest, RestoreIntoAnOccupiedCacheFailsCleanly)
{
    appendAllLayers(2, 1.0f);
    KvSnapshot snapshot = cache.evict();

    appendAllLayers(3, 5.0f);  // cache is full again
    const double before = cache.bf16Bytes();
    EXPECT_FALSE(cache.restore(snapshot));
    // Both sides untouched: the cache kept its contents, the snapshot
    // its bytes — nothing was consumed or leaked by the failure.
    EXPECT_EQ(cache.length(), 3);
    EXPECT_DOUBLE_EQ(cache.bf16Bytes(), before);
    EXPECT_FALSE(snapshot.empty());
    EXPECT_EQ(snapshot.length, 2);
}

TEST_F(KvCacheTest, RestoreRejectsMismatchedGeometry)
{
    appendAllLayers(2, 1.0f);
    KvSnapshot snapshot = cache.evict();

    KvCache narrow(m, 1, 32);  // different batch width
    EXPECT_FALSE(narrow.restore(snapshot));
    EXPECT_FALSE(snapshot.empty());

    KvCache small(m, 2, 1);    // snapshot no longer fits max_len
    EXPECT_FALSE(small.restore(snapshot));
    EXPECT_FALSE(snapshot.empty());

    KvSnapshot empty;
    EXPECT_FALSE(cache.restore(empty));
}

TEST_F(KvCacheTest, EvictMidStepPanics)
{
    detail::setThrowOnError(true);
    cache.append(0, filled(1, 0), filled(1, 0));  // layer 0 only
    EXPECT_THROW(cache.evict(), std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(KvCacheTest, FingerprintIsPrefixConsistent)
{
    appendAllLayers(4, 1.0f);
    const std::uint64_t at4 = cache.fingerprint();
    appendAllLayers(1, 9.0f);
    // The first four tokens digest identically whatever follows; the
    // full digests differ once contents diverge.
    EXPECT_EQ(cache.fingerprint(4), at4);
    EXPECT_NE(cache.fingerprint(), at4);
}

TEST_F(KvCacheTest, SnapshotRangeIsCompactAndPreloads)
{
    // Distinguishable per-step contents: token i holds value i.
    for (std::int64_t i = 0; i < 6; ++i)
        appendAllLayers(1, static_cast<float>(i));

    const KvSnapshot span = cache.snapshotRange(2, 5);
    EXPECT_TRUE(span.compact());
    EXPECT_EQ(span.length, 3);
    EXPECT_EQ(span.keys[0].at(0, 0, 0), 2.0f);
    EXPECT_EQ(span.keys[0].at(0, 2, 0), 4.0f);

    // Preload appends the span at the target's current end; contents
    // land bit-identically.
    KvCache target(m, 2, 32);
    EXPECT_TRUE(target.preload(span));
    EXPECT_EQ(target.length(), 3);
    EXPECT_EQ(target.keys(1).at(0, 1, 0), 3.0f);
    EXPECT_EQ(target.values(1).at(0, 1, 0), 3.5f);

    // A second preload stacks behind the first.
    EXPECT_TRUE(target.preload(cache.snapshotRange(0, 2)));
    EXPECT_EQ(target.length(), 5);
    EXPECT_EQ(target.keys(0).at(0, 3, 0), 0.0f);
}

TEST_F(KvCacheTest, PreloadRejectsMisfits)
{
    appendAllLayers(4, 1.0f);
    const KvSnapshot span = cache.snapshotRange(0, 4);

    KvCache tiny(m, 2, 3);  // too short for the span
    EXPECT_FALSE(tiny.preload(span));
    KvCache wrongBatch(m, 1, 32);
    EXPECT_FALSE(wrongBatch.preload(span));
    KvSnapshot empty;
    EXPECT_FALSE(cache.preload(empty));
}

// --- Truncation (the speculative-decoding reject path) ---------------

TEST_F(KvCacheTest, TruncatePreservesTheSurvivingPrefixBitIdentically)
{
    for (std::int64_t i = 0; i < 6; ++i)
        appendAllLayers(1, static_cast<float>(i));
    const std::uint64_t at4 = cache.fingerprint(4);

    cache.truncate(4);
    EXPECT_EQ(cache.length(), 4);
    // The surviving prefix digests exactly as it did before the
    // rejected suffix was dropped, and its contents still read back.
    EXPECT_EQ(cache.fingerprint(), at4);
    EXPECT_EQ(cache.keys(0).at(0, 3, 0), 3.0f);
    // 2 tensors * B=2 * len=4 * kvDim=64 * layers=4 * 2 bytes.
    EXPECT_DOUBLE_EQ(cache.bf16Bytes(), 2.0 * 2 * 4 * 64 * 4 * 2);
}

TEST_F(KvCacheTest, AppendsAfterTruncateOverwriteTheRejectedSuffix)
{
    for (std::int64_t i = 0; i < 6; ++i)
        appendAllLayers(1, static_cast<float>(i));
    cache.truncate(3);
    appendAllLayers(1, 42.0f);
    EXPECT_EQ(cache.length(), 4);
    // The new token landed where rejected token 3 used to be, and the
    // stale tokens 4..5 are unreachable.
    EXPECT_EQ(cache.keys(0).at(0, 3, 0), 42.0f);
    EXPECT_EQ(cache.keys(0).dim(1), 4);
}

TEST_F(KvCacheTest, TruncateToCurrentLengthAndToZeroAreConsistent)
{
    appendAllLayers(3, 1.0f);
    const std::uint64_t digest = cache.fingerprint();
    cache.truncate(3);  // no-op
    EXPECT_EQ(cache.length(), 3);
    EXPECT_EQ(cache.fingerprint(), digest);

    cache.truncate(0);  // full rollback
    EXPECT_EQ(cache.length(), 0);
    EXPECT_DOUBLE_EQ(cache.bf16Bytes(), 0.0);
    appendAllLayers(2, 7.0f);  // still usable afterwards
    EXPECT_EQ(cache.length(), 2);
}

TEST_F(KvCacheTest, TruncateComposesWithEvictAndRestore)
{
    for (std::int64_t i = 0; i < 5; ++i)
        appendAllLayers(1, static_cast<float>(i));
    cache.truncate(4);
    const std::uint64_t digest = cache.fingerprint();

    // The truncated cache swaps out and back with only the surviving
    // prefix: the snapshot carries 4 tokens, the restore fingerprints
    // identically to the pre-swap truncated cache.
    KvSnapshot parked = cache.evict();
    EXPECT_EQ(parked.length, 4);
    ASSERT_TRUE(cache.restore(parked));
    EXPECT_EQ(cache.length(), 4);
    EXPECT_EQ(cache.fingerprint(), digest);
}

TEST_F(KvCacheTest, TruncateComposesWithSnapshotRangePins)
{
    // A prefix-cache pin (snapshotRange copy) taken before a
    // speculative rollback must be unaffected by it: the span is a
    // compact copy, not a view.
    for (std::int64_t i = 0; i < 6; ++i)
        appendAllLayers(1, static_cast<float>(i));
    const KvSnapshot pinned = cache.snapshotRange(0, 4);

    cache.truncate(2);
    EXPECT_EQ(pinned.length, 4);
    EXPECT_EQ(pinned.keys[0].at(0, 3, 0), 3.0f);

    // And the pin still preloads into a fresh cache bit-identically.
    KvCache target(m, 2, 32);
    ASSERT_TRUE(target.preload(pinned));
    EXPECT_EQ(target.length(), 4);
    EXPECT_EQ(target.keys(0).at(0, 3, 0), 3.0f);
}

TEST_F(KvCacheTest, TruncateMidStepPanics)
{
    detail::setThrowOnError(true);
    cache.append(0, filled(1, 0), filled(1, 0));  // layer 0 only
    EXPECT_THROW(cache.truncate(0), std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(KvCacheTest, TruncatePastTheEndPanics)
{
    appendAllLayers(2, 1.0f);
    detail::setThrowOnError(true);
    EXPECT_THROW(cache.truncate(3), std::logic_error);
    EXPECT_THROW(cache.truncate(-1), std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(KvCacheTest, SplitHeadAndHeadCopyPartitionBytes)
{
    for (std::int64_t i = 0; i < 5; ++i)
        appendAllLayers(1, static_cast<float>(i));
    KvSnapshot span = cache.snapshotRange(0, 5);
    const double whole = span.bytes;

    const KvSnapshot copy = span.headCopy(2);
    EXPECT_EQ(copy.length, 2);
    EXPECT_EQ(copy.keys[0].at(0, 1, 0), 1.0f);
    EXPECT_EQ(span.length, 5);  // headCopy never mutates

    KvSnapshot head = span.splitHead(2);
    EXPECT_EQ(head.length, 2);
    EXPECT_EQ(span.length, 3);
    EXPECT_TRUE(head.compact());
    EXPECT_TRUE(span.compact());
    EXPECT_DOUBLE_EQ(head.bytes + span.bytes, whole);
    // The tail now starts at the original token 2.
    EXPECT_EQ(span.keys[0].at(0, 0, 0), 2.0f);
    // The head is bit-identical to the non-mutating copy.
    EXPECT_EQ(head.keys[2].at(1, 1, 5), copy.keys[2].at(1, 1, 5));
}

} // namespace
