/**
 * @file
 * Golden-output regression for greedy decoding on the int8 runtime
 * (DESIGN.md §12).
 *
 * Same fixture as golden_decode_test.cc — seed-1234 synthetic weights,
 * fixed prompts — but the executor stores and executes the projection
 * matrices in the int8 VNNI-style packed format. The quantization grid
 * legitimately changes numerics versus the fp32 golden (sequence 1
 * diverges at the third token), so the int8 stack pins its OWN golden
 * stream: any drift in the quantizer, the tile layout, the fused
 * dequant-GEMV, or the dequant expression changes these IDs and fails
 * loudly. Thread-count invariance is asserted both in-process (pools
 * of 1/2/4) and by the LIA_THREADS=4 re-run registered in CMake.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/thread_pool.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "runtime/executor.hh"
#include "runtime/kv_cache.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

constexpr std::uint64_t kWeightSeed = 1234;

model::ModelConfig
int8Model()
{
    return model::quantized(model::tinyOpt(),
                            model::WeightPrecision::Int8);
}

CooperativeExecutor
goldenExecutor(std::shared_ptr<base::ThreadPool> pool = nullptr)
{
    Rng rng(kWeightSeed);
    ExecutorConfig cfg;
    cfg.weightPrecision = model::WeightPrecision::Int8;
    cfg.pool = std::move(pool);
    return CooperativeExecutor(
        hw::sprA100(), TransformerWeights::random(int8Model(), rng),
        cfg);
}

std::vector<std::vector<std::int64_t>>
goldenPrompts()
{
    return {
        {1, 4, 7, 10, 13, 16, 19, 22},
        {8, 15, 22, 29, 36, 43, 50, 57},
    };
}

// Greedy continuations under seed-1234 weights executed on the int8
// packed path. Produced by this stack; regression anchors, not
// external truth.
const std::vector<std::int64_t> kGoldenSeq0 = {
    53, 184, 184, 184, 184, 184, 184, 184, 184, 184, 184, 184,
};
const std::vector<std::int64_t> kGoldenSeq1 = {
    124, 107, 107, 66, 66, 66, 107, 103, 107, 103, 107, 107,
};

TEST(Int8GoldenDecodeTest, GreedyStreamMatchesTheCommittedTokens)
{
    auto exec = goldenExecutor();
    const auto generated = exec.generate(
        goldenPrompts(),
        static_cast<std::int64_t>(kGoldenSeq0.size()));
    ASSERT_EQ(generated.size(), 2u);
    EXPECT_EQ(generated[0], kGoldenSeq0)
        << "sequence 0 drifted from the int8 golden stream";
    EXPECT_EQ(generated[1], kGoldenSeq1)
        << "sequence 1 drifted from the int8 golden stream";
}

TEST(Int8GoldenDecodeTest, StreamIsIdenticalAcrossPoolSizes)
{
    for (const int threads : {1, 2, 4}) {
        auto exec = goldenExecutor(
            std::make_shared<base::ThreadPool>(threads));
        const auto generated = exec.generate(
            goldenPrompts(),
            static_cast<std::int64_t>(kGoldenSeq0.size()));
        EXPECT_EQ(generated[0], kGoldenSeq0) << threads << " threads";
        EXPECT_EQ(generated[1], kGoldenSeq1) << threads << " threads";
    }
}

TEST(Int8GoldenDecodeTest, PerSequencePathReproducesTheGoldenStream)
{
    // The serving entry points (prefillChunk + decodeOne) run the same
    // int8 projections and must land on the same tokens.
    auto exec = goldenExecutor();
    const auto prompts = goldenPrompts();
    const std::vector<const std::vector<std::int64_t> *> golden = {
        &kGoldenSeq0, &kGoldenSeq1};

    for (std::size_t s = 0; s < prompts.size(); ++s) {
        KvCache cache(int8Model(), 1, 64);
        std::vector<std::int64_t> got;
        got.push_back(exec.prefillChunk(cache, prompts[s]));
        while (got.size() < golden[s]->size())
            got.push_back(exec.decodeOne(cache, got.back()));
        EXPECT_EQ(got, *golden[s]) << "sequence " << s;
    }
}

} // namespace
