/**
 * @file
 * Tests for the cooperative executor: real inference on a tiny model,
 * plan-independence of results, and transfer/capacity accounting.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "base/logging.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/sublayer.hh"
#include "runtime/executor.hh"

namespace {

using namespace lia;
using namespace lia::runtime;
using core::Policy;

class ExecutorTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::tinyOpt();

    TransformerWeights
    weights(std::uint64_t seed = 42)
    {
        Rng rng(seed);
        return TransformerWeights::random(m, rng);
    }

    std::vector<std::vector<std::int64_t>>
    prompts(std::int64_t batch = 2, std::int64_t len = 8)
    {
        std::vector<std::vector<std::int64_t>> out;
        for (std::int64_t b = 0; b < batch; ++b) {
            std::vector<std::int64_t> p;
            for (std::int64_t t = 0; t < len; ++t)
                p.push_back((7 * b + 3 * t + 1) % m.vocabSize);
            out.push_back(std::move(p));
        }
        return out;
    }
};

TEST_F(ExecutorTest, GeneratesRequestedTokenCount)
{
    CooperativeExecutor exec(sys, weights(), {});
    const auto out = exec.generate(prompts(), 6);
    ASSERT_EQ(out.size(), 2u);
    for (const auto &seq : out) {
        EXPECT_EQ(seq.size(), 6u);
        for (auto tok : seq) {
            EXPECT_GE(tok, 0);
            EXPECT_LT(tok, m.vocabSize);
        }
    }
}

TEST_F(ExecutorTest, GenerationIsDeterministic)
{
    CooperativeExecutor a(sys, weights(), {});
    CooperativeExecutor b(sys, weights(), {});
    EXPECT_EQ(a.generate(prompts(), 5), b.generate(prompts(), 5));
}

TEST_F(ExecutorTest, ResultsIndependentOfPolicy)
{
    // The execution plan moves work between devices; the numerics
    // must not change (the paper's back-end preserves the model).
    ExecutorConfig cpu_plan;  // default full CPU
    ExecutorConfig gpu_plan;
    gpu_plan.prefillPolicy = Policy::fullGpu();
    gpu_plan.decodePolicy = Policy::fullGpu();
    gpu_plan.residentLayers = 2;
    ExecutorConfig mixed_plan;
    mixed_plan.prefillPolicy = Policy::fullGpu();
    mixed_plan.decodePolicy = Policy::attentionOnCpu();

    CooperativeExecutor cpu_exec(sys, weights(), cpu_plan);
    CooperativeExecutor gpu_exec(sys, weights(), gpu_plan);
    CooperativeExecutor mixed_exec(sys, weights(), mixed_plan);
    const auto expected = cpu_exec.generate(prompts(), 8);
    EXPECT_EQ(gpu_exec.generate(prompts(), 8), expected);
    EXPECT_EQ(mixed_exec.generate(prompts(), 8), expected);
}

TEST_F(ExecutorTest, DifferentSeedsChangeOutputs)
{
    CooperativeExecutor a(sys, weights(1), {});
    CooperativeExecutor b(sys, weights(2), {});
    EXPECT_NE(a.generate(prompts(), 8), b.generate(prompts(), 8));
}

// --- Per-sequence serving entry points (chunked prefill / decode) ----

TEST_F(ExecutorTest, ChunkedPrefillIsBitIdenticalToMonolithic)
{
    CooperativeExecutor exec(sys, weights(), {});
    const auto prompt = prompts(1, 12)[0];

    KvCache whole(m, 1, 32);
    const auto monolithic = exec.prefillChunk(whole, prompt);

    // Uneven chunk boundaries; only the final chunk's sample counts.
    KvCache pieces(m, 1, 32);
    using Vec = std::vector<std::int64_t>;
    exec.prefillChunk(pieces, Vec(prompt.begin(), prompt.begin() + 5));
    exec.prefillChunk(pieces,
                      Vec(prompt.begin() + 5, prompt.begin() + 6));
    const auto chunked =
        exec.prefillChunk(pieces, Vec(prompt.begin() + 6, prompt.end()));

    EXPECT_EQ(chunked, monolithic);
    EXPECT_EQ(pieces.length(), whole.length());
    EXPECT_EQ(pieces.fingerprint(), whole.fingerprint());

    // The continuations stay identical too.
    auto a = monolithic, b = chunked;
    for (int i = 0; i < 6; ++i) {
        a = exec.decodeOne(whole, a);
        b = exec.decodeOne(pieces, b);
        EXPECT_EQ(b, a) << "diverged at continuation step " << i;
    }
}

TEST_F(ExecutorTest, PerSequencePathMatchesTheBatchApi)
{
    CooperativeExecutor batch_exec(sys, weights(), {});
    CooperativeExecutor seq_exec(sys, weights(), {});
    const auto prompt = prompts(1, 8)[0];
    const auto expected = batch_exec.generate({prompt}, 6)[0];

    KvCache cache(m, 1, 32);
    std::vector<std::int64_t> got;
    got.push_back(seq_exec.prefillChunk(cache, prompt));
    while (got.size() < expected.size())
        got.push_back(seq_exec.decodeOne(cache, got.back()));
    EXPECT_EQ(got, expected);
}

TEST_F(ExecutorTest, EvictAndRecomputeReproducesTheGeneration)
{
    CooperativeExecutor exec(sys, weights(), {});
    const auto prompt = prompts(1, 8)[0];

    // Uninterrupted reference generation.
    KvCache straight(m, 1, 32);
    std::vector<std::int64_t> reference;
    reference.push_back(exec.prefillChunk(straight, prompt));
    for (int i = 0; i < 5; ++i)
        reference.push_back(
            exec.decodeOne(straight, reference.back()));

    // Same sequence, evicted after three tokens: replaying prompt +
    // generated tokens rebuilds the KV bit-identically, the recompute
    // pass's final sample is the continuation token, and decode then
    // proceeds as if nothing happened.
    KvCache cache(m, 1, 32);
    std::vector<std::int64_t> out;
    out.push_back(exec.prefillChunk(cache, prompt));
    out.push_back(exec.decodeOne(cache, out.back()));
    out.push_back(exec.decodeOne(cache, out.back()));

    const auto parkedDigest = cache.fingerprint();
    const auto parkedLength = cache.length();
    (void)cache.evict();  // discard, as evict-and-recompute does

    std::vector<std::int64_t> replay = prompt;
    replay.insert(replay.end(), out.begin(), out.end());
    out.push_back(exec.prefillChunk(cache, replay));
    EXPECT_EQ(cache.fingerprint(parkedLength), parkedDigest);

    while (out.size() < reference.size())
        out.push_back(exec.decodeOne(cache, out.back()));
    EXPECT_EQ(out, reference);
}

TEST_F(ExecutorTest, FullCpuPlanHasZeroTraffic)
{
    CooperativeExecutor exec(sys, weights(), {});
    exec.generate(prompts(), 4);
    EXPECT_DOUBLE_EQ(exec.ledger().totalBytes(), 0.0);
    EXPECT_GT(exec.cpuDevice().busyTime(), 0.0);
    EXPECT_DOUBLE_EQ(exec.gpuDevice().busyTime(), 0.0);
}

TEST_F(ExecutorTest, GpuPlanTrafficMatchesAnalyticalModel)
{
    ExecutorConfig plan;
    plan.prefillPolicy = Policy::fullGpu();
    plan.decodePolicy = Policy::fullGpu();
    CooperativeExecutor exec(sys, weights(), plan);

    const std::int64_t b = 2, l_in = 8;
    exec.prefill(prompts(b, l_in));

    // Expected: per layer, all four parameter operands stream (Eq. 5)
    // plus the Eq. 9 KV store-back; activations never hop.
    model::Workload w{model::Stage::Prefill, b, l_in};
    double params = 0, kv = 0;
    for (auto sub : model::allSublayers()) {
        const auto c = model::sublayerCosts(m, w, sub);
        if (model::isParamSublayer(sub))
            params += c.dY;
        if (sub == model::Sublayer::QkvMapping)
            kv += c.dKv;
    }
    const double layers = static_cast<double>(m.numLayers);
    EXPECT_DOUBLE_EQ(exec.ledger().bytes(Traffic::Param),
                     layers * params);
    EXPECT_DOUBLE_EQ(exec.ledger().bytes(Traffic::Kv), layers * kv);
    EXPECT_DOUBLE_EQ(exec.ledger().bytes(Traffic::Activation), 0.0);
}

TEST_F(ExecutorTest, DecodeStepStreamsKvCache)
{
    ExecutorConfig plan;
    plan.prefillPolicy = Policy::fullGpu();
    plan.decodePolicy = Policy::fullGpu();
    CooperativeExecutor exec(sys, weights(), plan);
    const auto next = exec.prefill(prompts(2, 8));
    exec.resetStats();
    exec.decodeStep(next);

    // Context after the decode append is 9 tokens.
    model::Workload w{model::Stage::Decode, 2, 9};
    const auto qk = model::sublayerCosts(m, w,
                                         model::Sublayer::AttnScoreQK);
    const auto qkv = model::sublayerCosts(m, w,
                                          model::Sublayer::QkvMapping);
    const double layers = static_cast<double>(m.numLayers);
    EXPECT_DOUBLE_EQ(exec.ledger().bytes(Traffic::Kv),
                     layers * (2.0 * qk.dY + qkv.dKv));
}

TEST_F(ExecutorTest, ResidentLayersReduceParamTraffic)
{
    ExecutorConfig stream;
    stream.prefillPolicy = Policy::fullGpu();
    stream.decodePolicy = Policy::fullGpu();
    ExecutorConfig resident = stream;
    resident.residentLayers = 2;  // half of the 4 layers

    CooperativeExecutor a(sys, weights(), stream);
    CooperativeExecutor b(sys, weights(), resident);
    a.prefill(prompts());
    b.prefill(prompts());
    EXPECT_NEAR(b.ledger().bytes(Traffic::Param),
                0.5 * a.ledger().bytes(Traffic::Param), 1.0);
    EXPECT_GT(b.gpuDevice().allocatedBytes(), 0.0);
}

TEST_F(ExecutorTest, MixedPolicyChargesActivationHops)
{
    ExecutorConfig plan;
    plan.prefillPolicy = Policy::attentionOnCpu();
    plan.decodePolicy = Policy::attentionOnCpu();
    CooperativeExecutor exec(sys, weights(), plan);
    exec.prefill(prompts());
    EXPECT_GT(exec.ledger().bytes(Traffic::Activation), 0.0);
    EXPECT_GT(exec.cpuDevice().busyTime(), 0.0);
    EXPECT_GT(exec.gpuDevice().busyTime(), 0.0);
}

TEST_F(ExecutorTest, ModeledLatencyIsPositiveAndComposed)
{
    ExecutorConfig plan;
    plan.prefillPolicy = Policy::fullGpu();
    plan.decodePolicy = Policy::attentionOnCpu();
    CooperativeExecutor exec(sys, weights(), plan);
    exec.generate(prompts(), 4);
    EXPECT_NEAR(exec.modeledSerialLatency(),
                exec.cpuDevice().busyTime() +
                    exec.gpuDevice().busyTime() +
                    exec.ledger().totalTime(),
                1e-12);
    EXPECT_GT(exec.modeledSerialLatency(), 0.0);
}

TEST_F(ExecutorTest, ResetStatsClearsCounters)
{
    ExecutorConfig plan;
    plan.prefillPolicy = Policy::fullGpu();
    plan.decodePolicy = Policy::fullGpu();
    CooperativeExecutor exec(sys, weights(), plan);
    exec.prefill(prompts());
    exec.resetStats();
    EXPECT_DOUBLE_EQ(exec.ledger().totalBytes(), 0.0);
    EXPECT_DOUBLE_EQ(exec.cpuDevice().busyTime(), 0.0);
    EXPECT_EQ(exec.ledger().transferCount(), 0);
}

TEST_F(ExecutorTest, PromptsMustShareLength)
{
    detail::setThrowOnError(true);
    CooperativeExecutor exec(sys, weights(), {});
    std::vector<std::vector<std::int64_t>> ragged{{1, 2, 3}, {1, 2}};
    EXPECT_THROW(exec.prefill(ragged), std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(ExecutorTest, DecodeBeforePrefillPanics)
{
    detail::setThrowOnError(true);
    CooperativeExecutor exec(sys, weights(), {});
    EXPECT_THROW(exec.decodeStep({1, 2}), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(SimDeviceTest, AllocationTracksCapacity)
{
    SimDevice dev(hw::gpuA100());
    EXPECT_TRUE(dev.tryAllocate(10e9));
    EXPECT_FALSE(dev.tryAllocate(100e9));  // over 40 GB
    dev.release(10e9);
    EXPECT_DOUBLE_EQ(dev.allocatedBytes(), 0.0);
}

TEST(TransferLedgerTest, RecordsByCategory)
{
    TransferLedger ledger(hw::pcie4x16());
    ledger.record(Traffic::Param, 100);
    ledger.record(Traffic::Kv, 50);
    ledger.record(Traffic::Kv, 25);
    EXPECT_DOUBLE_EQ(ledger.bytes(Traffic::Param), 100);
    EXPECT_DOUBLE_EQ(ledger.bytes(Traffic::Kv), 75);
    EXPECT_DOUBLE_EQ(ledger.totalBytes(), 175);
    EXPECT_EQ(ledger.transferCount(), 3);
    EXPECT_GT(ledger.totalTime(), 0.0);
}

TEST(TransferLedgerTest, ZeroByteTransfersIgnored)
{
    TransferLedger ledger(hw::pcie4x16());
    ledger.record(Traffic::Activation, 0);
    EXPECT_EQ(ledger.transferCount(), 0);
    EXPECT_DOUBLE_EQ(ledger.totalTime(), 0.0);
}

} // namespace

namespace {

TEST(ExecutorStatsTest, RegisteredStatsTrackTheRun)
{
    using namespace lia;
    using namespace lia::runtime;
    const auto sys = hw::sprA100();
    const auto m = model::tinyOpt();
    Rng rng(55);
    ExecutorConfig plan;
    plan.prefillPolicy = core::Policy::fullGpu();
    plan.decodePolicy = core::Policy::fullGpu();
    CooperativeExecutor exec(
        sys, TransformerWeights::random(m, rng), plan);
    stats::Group group("lia");
    exec.registerStats(group);

    std::vector<std::vector<std::int64_t>> prompts{{1, 2, 3, 4},
                                                   {5, 6, 7, 8}};
    exec.generate(prompts, 3);

    const auto *param = dynamic_cast<const stats::Formula *>(
        group.find("lia.xfer.param_bytes"));
    ASSERT_NE(param, nullptr);
    EXPECT_DOUBLE_EQ(param->value(),
                     exec.ledger().bytes(Traffic::Param));
    EXPECT_GT(param->value(), 0.0);

    const auto *kv_tokens = dynamic_cast<const stats::Formula *>(
        group.find("lia.kv.context_tokens"));
    ASSERT_NE(kv_tokens, nullptr);
    EXPECT_DOUBLE_EQ(kv_tokens->value(), 4.0 + 3.0 - 1.0);

    std::ostringstream oss;
    group.dump(oss);
    EXPECT_NE(oss.str().find("lia.gpu.busy_seconds"),
              std::string::npos);
}

} // namespace

namespace {

TEST(ExecutorBatchInvarianceTest, SequencesIndependentOfBatchMates)
{
    // A sequence's outputs must not depend on what else shares its
    // batch — the causal mask and per-sequence KV must isolate them.
    // (This is the functional counterpart of splitting a batch into
    // mini-batches for Optimization-2: results cannot change.)
    using namespace lia;
    using namespace lia::runtime;
    const auto sys = hw::sprA100();
    const auto m = model::tinyOpt();
    Rng rng(99);
    const auto weights = TransformerWeights::random(m, rng);

    std::vector<std::vector<std::int64_t>> all{
        {1, 2, 3, 4, 5, 6},
        {7, 8, 9, 10, 11, 12},
        {13, 14, 15, 16, 17, 18},
        {19, 20, 21, 22, 23, 24}};

    CooperativeExecutor full(sys, weights, {});
    const auto joint = full.generate(all, 6);

    // The same sequences run as two half batches and as singletons.
    CooperativeExecutor half_a(sys, weights, {});
    const auto first =
        half_a.generate({all[0], all[1]}, 6);
    CooperativeExecutor half_b(sys, weights, {});
    const auto second =
        half_b.generate({all[2], all[3]}, 6);
    EXPECT_EQ(joint[0], first[0]);
    EXPECT_EQ(joint[1], first[1]);
    EXPECT_EQ(joint[2], second[0]);
    EXPECT_EQ(joint[3], second[1]);

    CooperativeExecutor solo(sys, weights, {});
    const auto alone = solo.generate({all[2]}, 6);
    EXPECT_EQ(joint[2], alone[0]);
}

TEST(ExecutorInt8Test, ParamTrafficHalvesUnderInt8)
{
    // The runtime and the analytic cost model must price the same
    // parameter bytes: an int8-quantized model streaming through a
    // full-GPU plan moves exactly half the Param bytes of the bf16
    // run (weightBytesPerElement 1.0 vs 2.0), because the ledger
    // charges model::sublayerCosts which read the config's width.
    const auto sys = hw::sprA100();
    ExecutorConfig plan;
    plan.prefillPolicy = Policy::fullGpu();
    plan.decodePolicy = Policy::fullGpu();

    Rng r16(42);
    CooperativeExecutor bf16(
        sys,
        TransformerWeights::random(model::tinyOpt(), r16), plan);

    const auto m8 = model::quantized(model::tinyOpt(),
                                     model::WeightPrecision::Int8);
    ExecutorConfig plan8 = plan;
    plan8.weightPrecision = model::WeightPrecision::Int8;
    Rng r8(42);
    CooperativeExecutor int8(
        sys, TransformerWeights::random(m8, r8), plan8);

    const std::vector<std::vector<std::int64_t>> p = {
        {1, 2, 3, 4, 5, 6, 7, 8}};
    bf16.prefill(p);
    int8.prefill(p);
    EXPECT_GT(int8.ledger().bytes(Traffic::Param), 0.0);
    EXPECT_DOUBLE_EQ(int8.ledger().bytes(Traffic::Param),
                     0.5 * bf16.ledger().bytes(Traffic::Param));
}

TEST(ExecutorInt8Test, Int8PrecisionDemandsInt8PricedConfig)
{
    // weightPrecision Int8 with a bf16-priced config would execute
    // int8 while the ledger charges bf16 bytes — rejected up front.
    detail::setThrowOnError(true);
    Rng rng(42);
    ExecutorConfig cfg;
    cfg.weightPrecision = model::WeightPrecision::Int8;
    EXPECT_THROW(
        CooperativeExecutor(
            hw::sprA100(),
            TransformerWeights::random(model::tinyOpt(), rng), cfg),
        std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
