/**
 * @file
 * Functional tests for the Llama-style runtime paths: grouped-query
 * attention and the gated (SwiGLU) FFN.
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"
#include "hw/system.hh"
#include "runtime/executor.hh"

namespace {

using namespace lia;
using namespace lia::runtime;
using core::Policy;

class GatedModelTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::tinyLlama();

    TransformerWeights
    weights(std::uint64_t seed = 77)
    {
        Rng rng(seed);
        return TransformerWeights::random(m, rng);
    }

    std::vector<std::vector<std::int64_t>>
    prompts(std::int64_t batch = 2, std::int64_t len = 8)
    {
        std::vector<std::vector<std::int64_t>> out;
        for (std::int64_t b = 0; b < batch; ++b) {
            std::vector<std::int64_t> p;
            for (std::int64_t t = 0; t < len; ++t)
                p.push_back((11 * b + 5 * t + 2) % m.vocabSize);
            out.push_back(std::move(p));
        }
        return out;
    }
};

TEST_F(GatedModelTest, ConfigUsesGqaAndGatedFfn)
{
    EXPECT_TRUE(m.gatedFfn);
    EXPECT_EQ(m.kvHeads, 2);
    EXPECT_LT(m.kvDim(), m.dModel);
}

TEST_F(GatedModelTest, GateWeightsAllocated)
{
    const auto w = weights();
    EXPECT_FALSE(w.layers[0].wg.empty());
    EXPECT_EQ(w.layers[0].wg.dim(1), m.ffnDim);
    // FC1 sublayer bytes include the gate (2x the up projection).
    EXPECT_NEAR(w.layers[0].sublayerBf16Bytes(4),
                2.0 * (w.layers[0].w1.bf16Bytes() +
                       w.layers[0].b1.bf16Bytes()),
                1.0);
}

TEST_F(GatedModelTest, GeneratesDeterministically)
{
    CooperativeExecutor a(sys, weights(), {});
    CooperativeExecutor b(sys, weights(), {});
    const auto out = a.generate(prompts(), 6);
    EXPECT_EQ(out, b.generate(prompts(), 6));
    for (const auto &seq : out)
        EXPECT_EQ(seq.size(), 6u);
}

TEST_F(GatedModelTest, PolicyInvarianceHoldsForGatedModels)
{
    ExecutorConfig gpu_plan;
    gpu_plan.prefillPolicy = Policy::fullGpu();
    gpu_plan.decodePolicy = Policy::attentionOnCpu();
    gpu_plan.residentLayers = 1;
    CooperativeExecutor cpu_exec(sys, weights(), {});
    CooperativeExecutor gpu_exec(sys, weights(), gpu_plan);
    EXPECT_EQ(cpu_exec.generate(prompts(), 8),
              gpu_exec.generate(prompts(), 8));
}

TEST_F(GatedModelTest, KvCacheUsesGqaWidth)
{
    CooperativeExecutor exec(sys, weights(), {});
    exec.prefill(prompts(2, 8));
    // 2 tensors * B * len * kvDim * layers * 2 bytes.
    EXPECT_DOUBLE_EQ(exec.cache().bf16Bytes(),
                     2.0 * 2 * 8 * m.kvDim() * m.numLayers * 2);
}

TEST_F(GatedModelTest, GqaTransferAccountingMatchesModel)
{
    ExecutorConfig plan;
    plan.prefillPolicy = Policy::fullGpu();
    plan.decodePolicy = Policy::fullGpu();
    CooperativeExecutor exec(sys, weights(), plan);
    const auto next = exec.prefill(prompts(2, 8));
    exec.resetStats();
    exec.decodeStep(next);
    core::CostModel cm(sys, m, {});
    const auto timing = cm.layerTiming(
        {model::Stage::Decode, 2, 9}, Policy::fullGpu());
    EXPECT_NEAR(exec.ledger().bytes(Traffic::Kv),
                static_cast<double>(m.numLayers) * timing.kvPcieBytes,
                1.0);
}

TEST_F(GatedModelTest, TopKSamplingProducesValidTokens)
{
    ExecutorConfig plan;
    plan.sampling.mode = SamplingMode::TopK;
    plan.sampling.topK = 8;
    plan.sampling.temperature = 0.9;
    plan.sampling.seed = 5;
    CooperativeExecutor exec(sys, weights(), plan);
    const auto out = exec.generate(prompts(), 10);
    for (const auto &seq : out) {
        for (auto tok : seq) {
            EXPECT_GE(tok, 0);
            EXPECT_LT(tok, m.vocabSize);
        }
    }
}

TEST_F(GatedModelTest, TopKDiffersFromGreedyEventually)
{
    ExecutorConfig greedy_plan;
    ExecutorConfig topk_plan;
    topk_plan.sampling.mode = SamplingMode::TopK;
    topk_plan.sampling.topK = 16;
    topk_plan.sampling.temperature = 2.0;
    topk_plan.sampling.seed = 11;
    CooperativeExecutor greedy(sys, weights(), greedy_plan);
    CooperativeExecutor topk(sys, weights(), topk_plan);
    EXPECT_NE(greedy.generate(prompts(), 16),
              topk.generate(prompts(), 16));
}

} // namespace

namespace {

TEST(QuantizedRuntimeTest, Int8ModelStillGeneratesAndChargesLess)
{
    using namespace lia;
    using namespace lia::runtime;
    const auto sys = hw::sprA100();
    const auto m = model::tinyOpt();
    Rng r1(31), r2(31);
    auto bf16 = TransformerWeights::random(m, r1);
    auto int8 = TransformerWeights::random(m, r2);
    quantizeWeights(int8, model::WeightPrecision::Int8);

    ExecutorConfig plan;
    plan.prefillPolicy = core::Policy::fullGpu();
    plan.decodePolicy = core::Policy::fullGpu();
    CooperativeExecutor exec16(sys, bf16, plan);
    CooperativeExecutor exec8(sys, int8, plan);

    std::vector<std::vector<std::int64_t>> prompts{{3, 1, 4, 1},
                                                   {5, 9, 2, 6}};
    const auto out16 = exec16.generate(prompts, 6);
    const auto out8 = exec8.generate(prompts, 6);
    for (const auto &seq : out8) {
        EXPECT_EQ(seq.size(), 6u);
        for (auto tok : seq) {
            EXPECT_GE(tok, 0);
            EXPECT_LT(tok, m.vocabSize);
        }
    }
    // Transfer accounting sees the compressed weights.
    EXPECT_NEAR(exec8.ledger().bytes(Traffic::Param),
                0.5 * exec16.ledger().bytes(Traffic::Param), 1.0);
}

} // namespace
