/**
 * @file
 * Tests for token sampling.
 */

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "base/logging.hh"
#include "runtime/sampler.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

TEST(SamplerTest, GreedyPicksArgmax)
{
    Sampler sampler;
    const float logits[] = {0.1f, 2.5f, -1.0f, 2.4f};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sampler.sample(logits, 4), 1);
}

TEST(SamplerTest, TopKOnlyDrawsFromTopCandidates)
{
    SamplingConfig cfg;
    cfg.mode = SamplingMode::TopK;
    cfg.topK = 2;
    Sampler sampler(cfg);
    const float logits[] = {5.0f, -10.0f, 4.5f, -9.0f};
    for (int i = 0; i < 200; ++i) {
        const auto tok = sampler.sample(logits, 4);
        EXPECT_TRUE(tok == 0 || tok == 2) << tok;
    }
}

TEST(SamplerTest, TopKFrequenciesFollowLogits)
{
    SamplingConfig cfg;
    cfg.mode = SamplingMode::TopK;
    cfg.topK = 2;
    cfg.temperature = 1.0;
    Sampler sampler(cfg);
    // logit gap of ln(3): expect ~3:1 ratio.
    const float logits[] = {1.0986f, 0.0f};
    std::map<std::int64_t, int> counts;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        counts[sampler.sample(logits, 2)]++;
    const double frac =
        static_cast<double>(counts[0]) / static_cast<double>(n);
    EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(SamplerTest, LowTemperatureApproachesGreedy)
{
    SamplingConfig cfg;
    cfg.mode = SamplingMode::TopK;
    cfg.topK = 4;
    cfg.temperature = 0.01;
    Sampler sampler(cfg);
    const float logits[] = {1.0f, 1.5f, 0.5f, 1.4f};
    int argmax_hits = 0;
    for (int i = 0; i < 500; ++i)
        argmax_hits += sampler.sample(logits, 4) == 1 ? 1 : 0;
    EXPECT_GT(argmax_hits, 480);
}

TEST(SamplerTest, DeterministicForSeed)
{
    SamplingConfig cfg;
    cfg.mode = SamplingMode::TopK;
    cfg.seed = 99;
    Sampler a(cfg), b(cfg);
    const float logits[] = {0.2f, 0.8f, 0.5f};
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.sample(logits, 3), b.sample(logits, 3));
}

TEST(SamplerTest, SampleRowsHandlesBatches)
{
    Sampler sampler;
    Tensor logits({2, 3});
    logits.at(0, 2) = 1.0f;
    logits.at(1, 0) = 1.0f;
    const auto out = sampler.sampleRows(logits);
    EXPECT_EQ(out, (std::vector<std::int64_t>{2, 0}));
}

TEST(SamplerTest, TopKLargerThanVocabClamped)
{
    SamplingConfig cfg;
    cfg.mode = SamplingMode::TopK;
    cfg.topK = 100;
    Sampler sampler(cfg);
    const float logits[] = {0.0f, 1.0f};
    for (int i = 0; i < 20; ++i) {
        const auto tok = sampler.sample(logits, 2);
        EXPECT_TRUE(tok == 0 || tok == 1);
    }
}

TEST(SamplerTest, BadConfigRejected)
{
    detail::setThrowOnError(true);
    SamplingConfig bad;
    bad.topK = 0;
    EXPECT_THROW(Sampler{bad}, std::logic_error);
    bad = SamplingConfig{};
    bad.temperature = 0;
    EXPECT_THROW(Sampler{bad}, std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
