/**
 * @file
 * Units and property suite for the int8 VNNI-style packed kernels
 * (DESIGN.md §12).
 *
 * Units pin the quantizer's contract: per-column-tile symmetric absmax
 * scales with round-to-nearest codes (round-trip error bounded by half
 * a quantization step), exact-zero tiles producing zero scales and
 * zero codes, the int32-accumulation viability bound on k, and the
 * byte-for-byte equivalence of the two pack entry points
 * (packColumnsInt8 of B vs packTransposedInt8 of B^T).
 *
 * The property suite is the §7 determinism contract applied to the
 * int8 path: random shapes — m=1 decode rows, ragged k/n leaving
 * partial tiles, odd k exercising the padded pair — run matmulInt8 at
 * thread pools of 1, 2, and the host default, and every output must
 * memcmp-equal the retained scalarMatmulInt8 reference. Against fp32
 * the int8 grid changes numerics by design, so accuracy is checked
 * separately with a tolerance.
 *
 * Scenario count scales with LIA_PROPERTY_SCENARIOS like the fp32
 * suite.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "runtime/kernels.hh"

namespace {

using namespace lia;
using namespace lia::runtime;
using base::ThreadPool;

std::size_t
shapeCount()
{
    if (const char *env = std::getenv("LIA_PROPERTY_SCENARIOS")) {
        const long scenarios = std::atol(env);
        if (scenarios > 0)
            return static_cast<std::size_t>(scenarios);
    }
    return 200;
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) *
                           static_cast<std::size_t>(a.numel())) == 0;
}

std::vector<std::shared_ptr<ThreadPool>>
contractPools()
{
    std::vector<std::shared_ptr<ThreadPool>> pools;
    pools.push_back(nullptr);  // inline serial path
    pools.push_back(std::make_shared<ThreadPool>(1));
    pools.push_back(std::make_shared<ThreadPool>(2));
    const int host = ThreadPool::defaultThreadCount();
    if (host > 2)
        pools.push_back(std::make_shared<ThreadPool>(host));
    return pools;
}

/** The stored code for element (kk, j): the pack layout is
 *  [tile][kPair][kPackTileWidth cols][2], zero-padded. */
std::int8_t
codeAt(const PackedInt8Matrix &p, std::int64_t kk, std::int64_t j)
{
    const std::int64_t tile = j / kPackTileWidth;
    const std::int64_t jj = j % kPackTileWidth;
    const std::int64_t base =
        tile * p.kPairs() * 2 * kPackTileWidth;
    return p.data[static_cast<std::size_t>(
        base + (kk / 2) * 2 * kPackTileWidth + jj * 2 + (kk & 1))];
}

TEST(Int8PackTest, RoundTripErrorBoundedByHalfAStep)
{
    // Symmetric absmax quantization with round-to-nearest: every
    // element must reconstruct to within scale/2, and the tile's
    // absmax element must hit ±127 exactly.
    Rng rng(31);
    const std::int64_t k = 37, n = 21;  // odd k, ragged n
    const Tensor b = Tensor::randomNormal({k, n}, rng, 1.0);
    const PackedInt8Matrix p = packColumnsInt8(b);
    ASSERT_EQ(p.k, k);
    ASSERT_EQ(p.n, n);
    ASSERT_EQ(p.tiles(), (n + kPackTileWidth - 1) / kPackTileWidth);
    ASSERT_EQ(p.scales.size(), static_cast<std::size_t>(p.tiles()));

    for (std::int64_t tile = 0; tile < p.tiles(); ++tile) {
        const std::int64_t j0 = tile * kPackTileWidth;
        const std::int64_t j1 = std::min(n, j0 + kPackTileWidth);
        float absmax = 0;
        for (std::int64_t j = j0; j < j1; ++j)
            for (std::int64_t kk = 0; kk < k; ++kk)
                absmax = std::max(absmax, std::abs(b.at(kk, j)));
        const float scale = p.scales[static_cast<std::size_t>(tile)];
        EXPECT_FLOAT_EQ(scale, absmax / 127.0f);

        bool saturated = false;
        for (std::int64_t j = j0; j < j1; ++j) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const std::int8_t q = codeAt(p, kk, j);
                EXPECT_GE(q, -127);
                EXPECT_LE(q, 127);
                saturated = saturated || q == 127 || q == -127;
                EXPECT_LE(std::abs(static_cast<float>(q) * scale -
                                   b.at(kk, j)),
                          scale * 0.5f + 1e-5f)
                    << "element (" << kk << ", " << j << ")";
            }
        }
        EXPECT_TRUE(saturated)
            << "tile " << tile << " absmax element missed +-127";
    }

    // The padded odd-k byte must be exactly zero everywhere.
    for (std::int64_t j = 0; j < n; ++j)
        EXPECT_EQ(codeAt(p, k, j), 0) << "padding at column " << j;
}

TEST(Int8PackTest, ZeroMatrixPacksToZeroScalesAndCodes)
{
    const Tensor b({16, 12});  // zero-initialised
    const PackedInt8Matrix p = packColumnsInt8(b);
    for (const float s : p.scales)
        EXPECT_EQ(s, 0.0f);
    for (const std::int8_t q : p.data)
        EXPECT_EQ(q, 0);

    // And the matmul against it is exactly the broadcast bias.
    Rng rng(5);
    const Tensor a = Tensor::randomNormal({3, 16}, rng, 1.0);
    const Tensor bias = Tensor::randomNormal({12}, rng, 1.0);
    const Tensor out = matmulInt8(a, p, bias, {false, nullptr});
    for (std::int64_t i = 0; i < 3; ++i)
        for (std::int64_t j = 0; j < 12; ++j)
            EXPECT_EQ(out.at(i, j), bias.at(j));
}

TEST(Int8PackTest, ViabilityBoundTracksInt32Accumulation)
{
    // (k+1)/2 pair-products of at most 2*127*127 = 32258 each must
    // fit int32: floor(INT32_MAX / 32258) = 66572 pairs, so the
    // largest viable k is 133144.
    EXPECT_TRUE(int8PackViable(1));
    EXPECT_TRUE(int8PackViable(4096));
    EXPECT_TRUE(int8PackViable(133144));
    EXPECT_FALSE(int8PackViable(133145));
    EXPECT_FALSE(int8PackViable(1 << 21));
}

TEST(Int8PackTest, ColumnsAndTransposedPacksAgreeByteForByte)
{
    std::mt19937_64 gen(404);
    std::uniform_int_distribution<std::int64_t> kAny(1, 70);
    std::uniform_int_distribution<std::int64_t> nAny(1, 70);
    for (int it = 0; it < 20; ++it) {
        const std::int64_t k = kAny(gen), n = nAny(gen);
        Rng rng(static_cast<std::uint64_t>(700 + it));
        const Tensor b = Tensor::randomNormal({k, n}, rng, 1.0);
        Tensor bt({n, k});
        for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t c = 0; c < k; ++c)
                bt.at(i, c) = b.at(c, i);
        const PackedInt8Matrix pc = packColumnsInt8(b);
        const PackedInt8Matrix pt = packTransposedInt8(bt);
        ASSERT_EQ(pc.data, pt.data) << k << "x" << n;
        ASSERT_EQ(pc.scales, pt.scales) << k << "x" << n;
    }
}

TEST(Int8KernelTest, AccuracyWithinQuantizationTolerance)
{
    // Against fp32 the int8 grid changes numerics by design; on
    // well-conditioned gaussian operands the relative error of the
    // 8-bit weight x 8-bit activation product stays small.
    Rng rng(88);
    const std::int64_t m = 8, k = 256, n = 128;
    const Tensor a = Tensor::randomNormal({m, k}, rng, 1.0);
    const Tensor b = Tensor::randomNormal({k, n}, rng, 1.0);
    const Tensor exact = matmul(a, b, Tensor(), {false, nullptr});
    const Tensor quant =
        matmulInt8(a, packColumnsInt8(b), Tensor(), {false, nullptr});
    double num = 0, den = 0;
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            const double d = exact.at(i, j) - quant.at(i, j);
            num += d * d;
            den += static_cast<double>(exact.at(i, j)) *
                   static_cast<double>(exact.at(i, j));
        }
    }
    EXPECT_LT(std::sqrt(num / den), 0.05)
        << "int8 kernel drifted past quantization tolerance";
}

TEST(Int8KernelProperty, MatchesScalarInt8ReferenceBitForBit)
{
    const auto pools = contractPools();
    std::mt19937_64 gen(20250808);
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<int> mKind(0, 3);
    std::uniform_int_distribution<std::int64_t> mBig(2, 33);
    std::uniform_int_distribution<std::int64_t> kAny(1, 70);
    std::uniform_int_distribution<std::int64_t> nAny(1, 70);

    const std::size_t shapes = shapeCount();
    for (std::size_t it = 0; it < shapes; ++it) {
        std::int64_t m;
        switch (mKind(gen)) {
        case 0: m = 1; break;                    // fused GEMV path
        case 1: m = 4; break;                    // block floor
        default: m = mBig(gen); break;
        }
        const std::int64_t k = kAny(gen), n = nAny(gen);
        Rng rng(static_cast<std::uint64_t>(3000 + it));
        const Tensor a = Tensor::randomNormal({m, k}, rng, 1.0);
        const Tensor b = Tensor::randomNormal({k, n}, rng, 1.0);
        Tensor bias;
        if (coin(gen)) {
            Rng brng(static_cast<std::uint64_t>(8000 + it));
            bias = Tensor::randomNormal({n}, brng, 1.0);
        }
        const bool round = coin(gen) != 0;
        const PackedInt8Matrix packed = packColumnsInt8(b);

        const Tensor ref =
            scalarMatmulInt8(a, packed, bias, {round, nullptr});
        for (const auto &pool : pools) {
            const KernelOptions opts{round, pool.get()};
            const int threads = pool ? pool->threadCount() : 0;
            ASSERT_TRUE(
                bitIdentical(matmulInt8(a, packed, bias, opts), ref))
                << "matmulInt8 " << m << "x" << k << "x" << n << " at "
                << threads << " threads";
        }
    }
}

} // namespace
