/**
 * @file
 * ClusterRouter integration tests on the tiny differential deployment:
 * single-replica equivalence with ServingEngine, load balancing under
 * each routing policy, §8 shard-width pricing, autoscaler behaviour
 * (including drain-before-decommission), and bit-identical determinism
 * of results and traces.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "cluster/router.hh"
#include "hw/catalog.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "serve/engine.hh"
#include "support/differential.hh"
#include "support/serving_checks.hh"

namespace lia {
namespace cluster {
namespace {

using model::Stage;
using test::tinyServedModel;
using test::tinySystem;

/** One decode step of the tiny deployment, for load scaling. */
double
decodeStep()
{
    static const double step = [] {
        ClusterConfig config;
        config.replicas = 1;
        ClusterRouter router(tinySystem(false), tinyServedModel(),
                             config);
        return router.costs().time(Stage::Decode, 1, 128);
    }();
    return step;
}

/** A small, queue-forming stream on the tiny model. */
serve::Config
tinyStream(std::size_t requests, double interarrival_steps)
{
    serve::Config config;
    config.requests = requests;
    config.seed = 7;
    config.trace = trace::TraceKind::Code;
    config.maxContext = 128;
    config.maxBatch = 4;
    config.kvBudgetCapBytes = 32768;
    config.arrivalRatePerSecond =
        1.0 / (interarrival_steps * decodeStep());
    return config;
}

ClusterConfig
tinyCluster(std::size_t replicas, RoutingPolicy routing,
            std::size_t requests = 60,
            double interarrival_steps = 4.0)
{
    ClusterConfig config;
    config.engine = tinyStream(requests, interarrival_steps);
    config.replicas = replicas;
    config.routing = routing;
    config.sessions = 8;
    return config;
}

void
checkClusterAccounting(const ClusterResult &result,
                       const ClusterConfig &config)
{
    EXPECT_EQ(result.requestsRouted, config.engine.requests);
    EXPECT_EQ(result.aggregate.completed + result.aggregate.rejected(),
              config.engine.requests);
    std::size_t routed = 0;
    for (const ReplicaReport &replica : result.replicas) {
        routed += replica.routed;
        EXPECT_EQ(replica.result.requests.size(), replica.routed);
        test::checkServingInvariants(replica.result, config.engine);
    }
    EXPECT_EQ(routed, config.engine.requests);
}

TEST(ClusterRouterTest, SingleReplicaMatchesServingEngine)
{
    const serve::Config stream = tinyStream(48, 8.0);

    ClusterConfig config;
    config.engine = stream;
    config.replicas = 1;
    ClusterResult cluster =
        ClusterRouter(tinySystem(false), tinyServedModel(), config)
            .run();

    serve::Result alone =
        serve::ServingEngine(tinySystem(false), tinyServedModel(),
                             stream)
            .run();

    ASSERT_EQ(cluster.replicas.size(), 1u);
    EXPECT_EQ(cluster.replicas[0].routed, stream.requests);
    test::expectIdenticalRuns(cluster.replicas[0].result, alone);
    EXPECT_DOUBLE_EQ(cluster.aggregate.makespan,
                     alone.metrics.makespan);
    checkClusterAccounting(cluster, config);
}

TEST(ClusterRouterTest, LeastKvLoadedSpreadsTheStream)
{
    const ClusterConfig config =
        tinyCluster(3, RoutingPolicy::LeastKvLoaded);
    ClusterResult result =
        ClusterRouter(tinySystem(false), tinyServedModel(), config)
            .run();
    checkClusterAccounting(result, config);
    ASSERT_EQ(result.replicas.size(), 3u);
    for (const ReplicaReport &replica : result.replicas)
        EXPECT_GT(replica.routed, 0u)
            << "replica " << replica.index << " never used";
    EXPECT_EQ(result.peakReplicas, 3u);
    EXPECT_EQ(result.finalReplicas, 3u);
    EXPECT_EQ(result.scaleUps, 0u);
    EXPECT_EQ(result.scaleDowns, 0u);
}

TEST(ClusterRouterTest, TtftAwareSpreadsTheStream)
{
    const ClusterConfig config =
        tinyCluster(3, RoutingPolicy::TtftAware);
    ClusterResult result =
        ClusterRouter(tinySystem(false), tinyServedModel(), config)
            .run();
    checkClusterAccounting(result, config);
    for (const ReplicaReport &replica : result.replicas)
        EXPECT_GT(replica.routed, 0u);
}

TEST(ClusterRouterTest, SessionAffinityIsPerfectOnAStaticFleet)
{
    const ClusterConfig config =
        tinyCluster(3, RoutingPolicy::SessionAffinity);
    ClusterResult result =
        ClusterRouter(tinySystem(false), tinyServedModel(), config)
            .run();
    checkClusterAccounting(result, config);
    // 60 requests over 8 sessions: repeats are guaranteed, and with
    // no resize every repeat must land where its session always did.
    EXPECT_DOUBLE_EQ(result.sessionAffinityHitRate, 1.0);
}

TEST(ClusterRouterTest, MoreReplicasServeAnOverloadFaster)
{
    const ClusterConfig narrow =
        tinyCluster(1, RoutingPolicy::LeastKvLoaded, 60, 2.0);
    const ClusterConfig wide =
        tinyCluster(4, RoutingPolicy::LeastKvLoaded, 60, 2.0);
    ClusterResult one =
        ClusterRouter(tinySystem(false), tinyServedModel(), narrow)
            .run();
    ClusterResult four =
        ClusterRouter(tinySystem(false), tinyServedModel(), wide)
            .run();
    checkClusterAccounting(one, narrow);
    checkClusterAccounting(four, wide);
    // The stream heavily overloads one tiny replica; four replicas
    // drain it in materially less simulated time.
    EXPECT_LT(four.makespan, one.makespan);
    EXPECT_GT(four.aggregate.completedPerSecond(),
              one.aggregate.completedPerSecond());
}

TEST(ClusterRouterTest, ShardWidthAddsTheAllReduceSurcharge)
{
    // Pricing on the real deployment: OPT-30B, W = 2 over NVLink.
    // Compare against a cache over the SAME pooled engine without the
    // tensor-parallel hook — the delta is exactly the §8 ring
    // all-reduce term. (It lands on prefill: LIA's decode policy runs
    // the row-parallel sublayers on the CPU, where no GPU all-reduce
    // is owed — pricing honours that.)
    ClusterConfig config;
    config.replicas = 2;
    config.shardWidth = 2;
    config.fabric = hw::nvlink3();
    ClusterRouter sharded(hw::sprA100(), model::opt30b(), config);

    serve::IterationCostCache no_tp(sharded.pricingEngine(),
                                    config.engine.contextBucket);
    const auto &with = sharded.costs().estimate(Stage::Prefill, 4,
                                                2048);
    const auto &without = no_tp.estimate(Stage::Prefill, 4, 2048);
    EXPECT_GT(with.breakdown.comTime, without.breakdown.comTime);
    EXPECT_GT(with.time, without.time);

    // And the cluster plumbing reports the width and the GPU budget.
    ClusterConfig tiny = tinyCluster(2, RoutingPolicy::LeastKvLoaded);
    tiny.shardWidth = 2;
    tiny.fabric = hw::nvlink3();
    ClusterResult result =
        ClusterRouter(tinySystem(false), tinyServedModel(), tiny)
            .run();
    checkClusterAccounting(result, tiny);
    EXPECT_EQ(result.shardWidth, 2);
    EXPECT_EQ(result.peakGpus(), 4u);
}

TEST(ClusterRouterTest, AutoscalerGrowsUnderPressure)
{
    ClusterConfig config =
        tinyCluster(1, RoutingPolicy::LeastKvLoaded, 80, 2.0);
    config.engine.maxBatch = 2;
    config.autoscaler.enabled = true;
    config.autoscaler.minReplicas = 1;
    config.autoscaler.maxReplicas = 3;
    config.autoscaler.evaluationPeriod = 40.0 * decodeStep();
    config.autoscaler.scaleUpQueueDepth = 4.0;
    config.autoscaler.hysteresisTicks = 2;
    config.autoscaler.cooldown = 0.0;

    ClusterResult result =
        ClusterRouter(tinySystem(false), tinyServedModel(), config)
            .run();
    checkClusterAccounting(result, config);
    EXPECT_GE(result.scaleUps, 1u);
    EXPECT_GT(result.peakReplicas, 1u);
    EXPECT_LE(result.peakReplicas, 3u);
    // run() itself hard-asserts nothing was stranded; the terminal
    // accounting above re-checks it from the outside.
}

TEST(ClusterRouterTest, AutoscalerDrainsIdleReplicasGracefully)
{
    // A trickle stream over a 3-replica fleet: capacity is provably
    // idle, so the fleet shrinks toward minReplicas — and every
    // request routed to a draining replica still completes.
    ClusterConfig config =
        tinyCluster(3, RoutingPolicy::LeastKvLoaded, 40, 200.0);
    config.engine.kvBudgetCapBytes = 0;  // occupancy ~0: idle fleet
    config.autoscaler.enabled = true;
    config.autoscaler.minReplicas = 1;
    config.autoscaler.maxReplicas = 3;
    config.autoscaler.evaluationPeriod = 100.0 * decodeStep();
    config.autoscaler.scaleDownKvOccupancy = 0.15;
    config.autoscaler.hysteresisTicks = 2;
    config.autoscaler.cooldown = 200.0 * decodeStep();

    ClusterResult result =
        ClusterRouter(tinySystem(false), tinyServedModel(), config)
            .run();
    checkClusterAccounting(result, config);
    EXPECT_GE(result.scaleDowns, 1u);
    EXPECT_LT(result.finalReplicas, 3u);
    EXPECT_GE(result.finalReplicas, 1u);

    std::size_t retired = 0;
    for (const ReplicaReport &replica : result.replicas) {
        if (replica.retiredAt >= 0) {
            ++retired;
            EXPECT_GE(replica.retiredAt, replica.spawnedAt);
            // Drained before decommission: nothing unfinished.
            EXPECT_EQ(replica.result.metrics.completed +
                          replica.result.metrics.rejected(),
                      replica.routed);
        }
    }
    EXPECT_EQ(retired, result.scaleUps + config.replicas -
                           result.finalReplicas);
}

TEST(ClusterRouterTest, RunsAreBitIdentical)
{
    const ClusterConfig base =
        tinyCluster(3, RoutingPolicy::TtftAware);

    ClusterConfig first = base;
    obs::ChromeTraceWriter trace_a;
    first.sink = &trace_a;
    ClusterResult a =
        ClusterRouter(tinySystem(false), tinyServedModel(), first)
            .run();

    ClusterConfig second = base;
    obs::ChromeTraceWriter trace_b;
    second.sink = &trace_b;
    ClusterResult b =
        ClusterRouter(tinySystem(false), tinyServedModel(), second)
            .run();

    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (std::size_t i = 0; i < a.replicas.size(); ++i) {
        EXPECT_EQ(a.replicas[i].routed, b.replicas[i].routed);
        test::expectIdenticalRuns(a.replicas[i].result,
                                  b.replicas[i].result);
    }
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_FALSE(trace_a.events().empty());
    test::expectIdenticalTraces(trace_a, trace_b);

    // A sink must not perturb the run: a third, sinkless pass agrees.
    ClusterResult c =
        ClusterRouter(tinySystem(false), tinyServedModel(), base)
            .run();
    for (std::size_t i = 0; i < a.replicas.size(); ++i)
        test::expectIdenticalRuns(a.replicas[i].result,
                                  c.replicas[i].result);
}

} // namespace
} // namespace cluster
} // namespace lia
