/**
 * @file
 * Consistent-hash-ring unit tests: deterministic placement, full node
 * coverage, and the minimal-remap property session-affinity routing
 * rests on (resizing moves only the departed node's keys).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "base/logging.hh"
#include "cluster/hash_ring.hh"

namespace lia {
namespace cluster {
namespace {

constexpr std::uint64_t kKeys = 4096;

std::vector<std::size_t>
mapping(const ConsistentHashRing &ring)
{
    std::vector<std::size_t> owners;
    owners.reserve(kKeys);
    for (std::uint64_t key = 0; key < kKeys; ++key)
        owners.push_back(ring.nodeFor(key));
    return owners;
}

TEST(ConsistentHashRingTest, HashIsStable)
{
    EXPECT_EQ(ConsistentHashRing::hash(0),
              ConsistentHashRing::hash(0));
    EXPECT_NE(ConsistentHashRing::hash(0),
              ConsistentHashRing::hash(1));
}

TEST(ConsistentHashRingTest, IdenticalRingsMapIdentically)
{
    ConsistentHashRing a, b;
    for (std::size_t node = 0; node < 8; ++node) {
        a.addNode(node);
        b.addNode(node);
    }
    EXPECT_EQ(mapping(a), mapping(b));
}

TEST(ConsistentHashRingTest, EveryNodeOwnsSomeKeys)
{
    ConsistentHashRing ring;
    constexpr std::size_t kNodes = 8;
    for (std::size_t node = 0; node < kNodes; ++node)
        ring.addNode(node);
    EXPECT_EQ(ring.nodeCount(), kNodes);

    std::map<std::size_t, std::size_t> per_node;
    for (std::size_t owner : mapping(ring))
        ++per_node[owner];
    EXPECT_EQ(per_node.size(), kNodes);
    for (const auto &[node, share] : per_node) {
        EXPECT_LT(node, kNodes);
        EXPECT_GT(share, 0u);
    }
}

TEST(ConsistentHashRingTest, AddingTwiceIsANoOp)
{
    ConsistentHashRing ring;
    ring.addNode(0);
    ring.addNode(1);
    const auto before = mapping(ring);
    ring.addNode(1);
    EXPECT_EQ(ring.nodeCount(), 2u);
    EXPECT_EQ(mapping(ring), before);
}

TEST(ConsistentHashRingTest, RemovalMovesOnlyTheVictimsKeys)
{
    ConsistentHashRing ring;
    constexpr std::size_t kNodes = 8;
    for (std::size_t node = 0; node < kNodes; ++node)
        ring.addNode(node);

    const auto before = mapping(ring);
    constexpr std::size_t kVictim = 3;
    ring.removeNode(kVictim);
    EXPECT_EQ(ring.nodeCount(), kNodes - 1);
    const auto after = mapping(ring);

    std::size_t victim_share = 0, moved = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        if (before[key] == kVictim) {
            ++victim_share;
            EXPECT_NE(after[key], kVictim);
        } else {
            // The defining consistent-hashing property: keys not on
            // the departed node do not move.
            EXPECT_EQ(after[key], before[key]);
        }
        moved += after[key] != before[key] ? 1 : 0;
    }
    EXPECT_EQ(moved, victim_share);

    // The remap fraction is roughly 1/N, not a full reshuffle.
    EXPECT_LT(static_cast<double>(moved) / kKeys, 3.0 / kNodes);
    EXPECT_GT(moved, 0u);
}

TEST(ConsistentHashRingTest, ReAddingRestoresTheOriginalMapping)
{
    ConsistentHashRing ring;
    for (std::size_t node = 0; node < 4; ++node)
        ring.addNode(node);
    const auto before = mapping(ring);
    ring.removeNode(2);
    ring.addNode(2);
    EXPECT_EQ(mapping(ring), before);
}

TEST(ConsistentHashRingTest, EmptyRingPanicsOnLookup)
{
    lia::detail::setThrowOnError(true);
    ConsistentHashRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_THROW(ring.nodeFor(7), std::logic_error);
    ring.addNode(0);
    ring.removeNode(0);
    EXPECT_TRUE(ring.empty());
    EXPECT_THROW(ring.nodeFor(7), std::logic_error);
    lia::detail::setThrowOnError(false);
}

TEST(ConsistentHashRingTest, SmallIntegerKeysStillSpread)
{
    // Regression: node 0's vnode points used to be hash(0..vnodes-1)
    // — exactly the hashes of small integer session ids — so every
    // session id below the vnode count found an exactly-equal point
    // and the whole keyspace collapsed onto node 0. The double-hashed
    // points must spread even this adversarial key set.
    ConsistentHashRing ring;
    for (std::size_t node = 0; node < 4; ++node)
        ring.addNode(node);
    std::map<std::size_t, std::size_t> owners;
    for (std::uint64_t session = 0; session < 16; ++session)
        ++owners[ring.nodeFor(session)];
    EXPECT_GE(owners.size(), 2u)
        << "16 small session ids all routed to one node";
}

TEST(ConsistentHashRingTest, SingleNodeOwnsEverything)
{
    ConsistentHashRing ring;
    ring.addNode(5);
    for (std::uint64_t key = 0; key < 64; ++key)
        EXPECT_EQ(ring.nodeFor(key), 5u);
}

} // namespace
} // namespace cluster
} // namespace lia
