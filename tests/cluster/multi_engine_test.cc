/**
 * @file
 * Multi-engine determinism: two EngineInstances advancing on ONE
 * shared sim::EventQueue, each executing its plans on a runtime
 * backend — both backends on the process-wide base::ThreadPool —
 * must produce bit-identical per-replica results AND byte-identical
 * per-replica Chrome traces across repeated runs. This is the
 * property the cluster router's determinism guarantee reduces to.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "base/thread_pool.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "serve/instance.hh"
#include "serve/runtime_backend.hh"
#include "serve/tracks.hh"
#include "sim/event_queue.hh"
#include "support/differential.hh"
#include "support/serving_checks.hh"

namespace lia {
namespace serve {
namespace {

using test::tinyServedModel;
using test::tinySharedCosts;
using test::tinySystem;

struct Submission
{
    double steps;  //!< arrival time in decode-step units
    std::int64_t lIn;
    std::int64_t lOut;
};

/** Interleaved per-engine streams (decode-step time units). */
constexpr std::array<Submission, 6> kStreamA = {{
    {0.0, 24, 8},
    {1.0, 40, 12},
    {3.0, 16, 6},
    {4.5, 56, 10},
    {7.0, 32, 8},
    {9.0, 20, 12},
}};
constexpr std::array<Submission, 6> kStreamB = {{
    {0.3, 48, 10},
    {1.7, 24, 6},
    {2.9, 64, 8},
    {5.1, 16, 12},
    {6.3, 40, 6},
    {8.7, 28, 10},
}};

serve::Config
engineConfig()
{
    serve::Config config;
    config.requests = kStreamA.size();
    config.seed = 11;
    config.trace = trace::TraceKind::Code;
    config.maxContext = 96;
    config.maxBatch = 3;
    config.prefillChunkTokens = 16;
    config.kvBudgetCapBytes = 24576;  // tight enough to queue
    return config;
}

struct EngineOutcome
{
    Result result;
    std::string traceJson;
    obs::ChromeTraceWriter trace;
};

/** One shared-clock run of two backed engines; returns both. */
std::pair<std::unique_ptr<EngineOutcome>,
          std::unique_ptr<EngineOutcome>>
runSharedClock()
{
    auto outcome_a = std::make_unique<EngineOutcome>();
    auto outcome_b = std::make_unique<EngineOutcome>();

    const auto costs = tinySharedCosts(false);
    const double step =
        costs->time(model::Stage::Decode, 1, 96);

    sim::EventQueue events;

    serve::Config config_a = engineConfig();
    config_a.sink = &outcome_a->trace;
    serve::Config config_b = engineConfig();
    config_b.seed = 12;
    config_b.sink = &outcome_b->trace;

    EngineInstance engine_a(tinySystem(false), tinyServedModel(),
                            config_a, *costs, events,
                            tracks::replica(0));
    EngineInstance engine_b(tinySystem(false), tinyServedModel(),
                            config_b, *costs, events,
                            tracks::replica(1));

    // Both backends execute on the process-wide kernel thread pool;
    // the differential harness already guarantees a backend never
    // perturbs scheduling, so sharing the pool must not either.
    RuntimeBackend backend_a(tinySystem(false), tinyServedModel(),
                             config_a);
    RuntimeBackend backend_b(tinySystem(false), tinyServedModel(),
                             config_b);
    engine_a.setBackend(&backend_a);
    engine_b.setBackend(&backend_b);

    for (const Submission &s : kStreamA)
        events.schedule(s.steps * step, [&engine_a, s]() {
            engine_a.submit(s.lIn, s.lOut);
        });
    for (const Submission &s : kStreamB)
        events.schedule(s.steps * step, [&engine_b, s]() {
            engine_b.submit(s.lIn, s.lOut);
        });

    events.run();
    backend_a.onDrain();
    backend_b.onDrain();

    outcome_a->result = engine_a.finalize();
    outcome_b->result = engine_b.finalize();
    outcome_a->traceJson = outcome_a->trace.toJson();
    outcome_b->traceJson = outcome_b->trace.toJson();
    return {std::move(outcome_a), std::move(outcome_b)};
}

TEST(MultiEngineDeterminismTest, SharedClockBackedRunsAreBitIdentical)
{
    auto [first_a, first_b] = runSharedClock();
    auto [second_a, second_b] = runSharedClock();

    // Both engines served their full streams.
    EXPECT_EQ(first_a->result.requests.size(), kStreamA.size());
    EXPECT_EQ(first_b->result.requests.size(), kStreamB.size());
    EXPECT_GT(first_a->result.metrics.completed, 0u);
    EXPECT_GT(first_b->result.metrics.completed, 0u);

    // Run-to-run: bit-identical results per engine...
    test::expectIdenticalRuns(first_a->result, second_a->result);
    test::expectIdenticalRuns(first_b->result, second_b->result);

    // ...and byte-identical per-replica traces.
    EXPECT_FALSE(first_a->trace.events().empty());
    EXPECT_FALSE(first_b->trace.events().empty());
    test::expectIdenticalTraces(first_a->trace, second_a->trace);
    test::expectIdenticalTraces(first_b->trace, second_b->trace);
    EXPECT_EQ(first_a->traceJson, second_a->traceJson);
    EXPECT_EQ(first_b->traceJson, second_b->traceJson);

    // The two engines emit under distinct replica namespaces, so one
    // engine's trace never aliases the other's.
    EXPECT_NE(first_a->traceJson, first_b->traceJson);
}

TEST(MultiEngineDeterminismTest, ThreadCountDoesNotChangeTheClock)
{
    // The shared pool's size is an execution detail: the simulated
    // outcome (scheduling, timings, token counts) must not see it.
    // LIA_THREADS is pinned per-process by CI; here we just assert
    // the analytical clock of a backed shared-queue run equals a
    // second run after the pool has been exercised by the first.
    auto [a1, b1] = runSharedClock();
    auto [a2, b2] = runSharedClock();
    EXPECT_EQ(a1->result.metrics.makespan, a2->result.metrics.makespan);
    EXPECT_EQ(b1->result.metrics.makespan, b2->result.metrics.makespan);
}

} // namespace
} // namespace serve
} // namespace lia
