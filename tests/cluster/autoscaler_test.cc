/**
 * @file
 * ReplicaAutoscaler unit tests: the threshold state machine alone —
 * hysteresis streaks, post-action cooldown, fleet bounds, and the
 * both-signals-quiet rule for scale-down. No simulation involved.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "cluster/autoscaler.hh"

namespace lia {
namespace cluster {
namespace {

AutoscalerConfig
testConfig()
{
    AutoscalerConfig config;
    config.enabled = true;
    config.minReplicas = 1;
    config.maxReplicas = 4;
    config.evaluationPeriod = 1.0;
    config.scaleUpQueueDepth = 8.0;
    config.scaleDownKvOccupancy = 0.15;
    config.hysteresisTicks = 2;
    config.cooldown = 10.0;
    return config;
}

AutoscalerSignals
pressured(std::size_t active)
{
    AutoscalerSignals s;
    s.meanQueueDepth = 20.0;
    s.meanKvOccupancy = 0.9;
    s.activeReplicas = active;
    return s;
}

AutoscalerSignals
idle(std::size_t active)
{
    AutoscalerSignals s;
    s.meanQueueDepth = 0.0;
    s.meanKvOccupancy = 0.01;
    s.activeReplicas = active;
    return s;
}

AutoscalerSignals
steady(std::size_t active)
{
    // Neither pressured nor idle: moderate queue, busy KV.
    AutoscalerSignals s;
    s.meanQueueDepth = 2.0;
    s.meanKvOccupancy = 0.6;
    s.activeReplicas = active;
    return s;
}

TEST(ReplicaAutoscalerTest, HysteresisDelaysScaleUp)
{
    ReplicaAutoscaler scaler(testConfig());
    EXPECT_EQ(scaler.evaluate(1.0, pressured(2)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.upStreak(), 1);
    EXPECT_EQ(scaler.evaluate(2.0, pressured(2)), ScaleDecision::Up);
    EXPECT_EQ(scaler.upStreak(), 0);  // acting resets the streak
}

TEST(ReplicaAutoscalerTest, HysteresisDelaysScaleDown)
{
    ReplicaAutoscaler scaler(testConfig());
    EXPECT_EQ(scaler.evaluate(1.0, idle(3)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.downStreak(), 1);
    EXPECT_EQ(scaler.evaluate(2.0, idle(3)), ScaleDecision::Down);
    EXPECT_EQ(scaler.downStreak(), 0);
}

TEST(ReplicaAutoscalerTest, SteadyWindowResetsStreaks)
{
    ReplicaAutoscaler scaler(testConfig());
    EXPECT_EQ(scaler.evaluate(1.0, pressured(2)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.upStreak(), 1);
    EXPECT_EQ(scaler.evaluate(2.0, steady(2)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.upStreak(), 0);
    // The breach must now re-accumulate from scratch.
    EXPECT_EQ(scaler.evaluate(3.0, pressured(2)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.evaluate(4.0, pressured(2)), ScaleDecision::Up);
}

TEST(ReplicaAutoscalerTest, OpposingSignalResetsTheOtherStreak)
{
    ReplicaAutoscaler scaler(testConfig());
    EXPECT_EQ(scaler.evaluate(1.0, pressured(2)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.evaluate(2.0, idle(2)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.upStreak(), 0);
    EXPECT_EQ(scaler.downStreak(), 1);
}

TEST(ReplicaAutoscalerTest, CooldownSuppressesTheNextAction)
{
    ReplicaAutoscaler scaler(testConfig());
    scaler.evaluate(1.0, pressured(2));
    EXPECT_EQ(scaler.evaluate(2.0, pressured(2)), ScaleDecision::Up);
    // Still pressured, streak re-reaches the threshold — but the
    // 10 s cooldown holds the fleet.
    EXPECT_EQ(scaler.evaluate(3.0, pressured(3)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.evaluate(4.0, pressured(3)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.evaluate(11.0, pressured(3)),
              ScaleDecision::Hold);  // 11 - 2 < 10
    EXPECT_EQ(scaler.evaluate(12.0, pressured(3)), ScaleDecision::Up);
}

TEST(ReplicaAutoscalerTest, MaxReplicasClampsScaleUp)
{
    ReplicaAutoscaler scaler(testConfig());
    scaler.evaluate(1.0, pressured(4));
    EXPECT_EQ(scaler.evaluate(2.0, pressured(4)), ScaleDecision::Hold);
    // The moment capacity frees up (and the streak is intact), up.
    EXPECT_EQ(scaler.evaluate(3.0, pressured(3)), ScaleDecision::Up);
}

TEST(ReplicaAutoscalerTest, MinReplicasClampsScaleDown)
{
    ReplicaAutoscaler scaler(testConfig());
    scaler.evaluate(1.0, idle(1));
    EXPECT_EQ(scaler.evaluate(2.0, idle(1)), ScaleDecision::Hold);
    EXPECT_EQ(scaler.evaluate(3.0, idle(1)), ScaleDecision::Hold);
}

TEST(ReplicaAutoscalerTest, DeepQueueWithLowKvIsNotIdle)
{
    // Low KV occupancy with a deep queue means admission is stuck,
    // not that capacity is spare: never scale down into a backlog.
    ReplicaAutoscaler scaler(testConfig());
    AutoscalerSignals stuck;
    stuck.meanQueueDepth = 20.0;  // pressured...
    stuck.meanKvOccupancy = 0.01; // ...despite an empty-looking KV
    stuck.activeReplicas = 2;
    EXPECT_EQ(scaler.evaluate(1.0, stuck), ScaleDecision::Hold);
    EXPECT_EQ(scaler.downStreak(), 0);
    EXPECT_EQ(scaler.upStreak(), 1);
    EXPECT_EQ(scaler.evaluate(2.0, stuck), ScaleDecision::Up);
}

TEST(ReplicaAutoscalerTest, ValidateRejectsMalformedConfigs)
{
    lia::detail::setThrowOnError(true);
    AutoscalerConfig bad = testConfig();
    bad.minReplicas = 0;
    EXPECT_THROW(bad.validate(), std::logic_error);

    bad = testConfig();
    bad.maxReplicas = 1;
    bad.minReplicas = 2;
    EXPECT_THROW(bad.validate(), std::logic_error);

    bad = testConfig();
    bad.evaluationPeriod = 0;
    EXPECT_THROW(bad.validate(), std::logic_error);

    bad = testConfig();
    bad.hysteresisTicks = 0;
    EXPECT_THROW(bad.validate(), std::logic_error);

    bad = testConfig();
    bad.cooldown = -1;
    EXPECT_THROW(bad.validate(), std::logic_error);
    lia::detail::setThrowOnError(false);
}

} // namespace
} // namespace cluster
} // namespace lia
