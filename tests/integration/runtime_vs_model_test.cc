/**
 * @file
 * Integration: the functional runtime's byte-accurate transfer ledger
 * and modeled busy times must agree with the analytical CostModel for
 * the same plan — the two implementations are independent, so this
 * validates both.
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"
#include "hw/system.hh"
#include "runtime/executor.hh"

namespace {

using namespace lia;
using core::Policy;

class RuntimeVsModelTest
    : public ::testing::TestWithParam<unsigned>
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::tinyOpt();

    runtime::CooperativeExecutor
    makeExecutor(const Policy &policy, int resident = 0)
    {
        Rng rng(123);
        runtime::ExecutorConfig cfg;
        cfg.prefillPolicy = policy;
        cfg.decodePolicy = policy;
        cfg.residentLayers = resident;
        return runtime::CooperativeExecutor(
            sys, runtime::TransformerWeights::random(m, rng), cfg);
    }

    std::vector<std::vector<std::int64_t>>
    prompts(std::int64_t batch, std::int64_t len)
    {
        std::vector<std::vector<std::int64_t>> out;
        for (std::int64_t b = 0; b < batch; ++b) {
            std::vector<std::int64_t> p;
            for (std::int64_t t = 0; t < len; ++t)
                p.push_back((5 * b + t) % m.vocabSize);
            out.push_back(std::move(p));
        }
        return out;
    }
};

TEST_P(RuntimeVsModelTest, PrefillBytesMatchAnalyticalModel)
{
    const Policy policy = Policy::fromMask(GetParam());
    auto exec = makeExecutor(policy);
    const std::int64_t batch = 2, l_in = 8;
    exec.prefill(prompts(batch, l_in));

    core::CostModel cm(sys, m, {});
    const auto timing = cm.layerTiming(
        {model::Stage::Prefill, batch, l_in}, policy);
    const double layers = static_cast<double>(m.numLayers);

    EXPECT_NEAR(exec.ledger().bytes(runtime::Traffic::Param),
                layers * timing.paramPcieBytes, 1.0)
        << policy.toString();
    EXPECT_NEAR(exec.ledger().bytes(runtime::Traffic::Kv),
                layers * timing.kvPcieBytes, 1.0)
        << policy.toString();
    EXPECT_NEAR(exec.ledger().bytes(runtime::Traffic::Activation),
                layers * timing.actPcieBytes, 1.0)
        << policy.toString();
}

TEST_P(RuntimeVsModelTest, DecodeBytesMatchAnalyticalModel)
{
    const Policy policy = Policy::fromMask(GetParam());
    auto exec = makeExecutor(policy);
    const std::int64_t batch = 2, l_in = 8;
    const auto next = exec.prefill(prompts(batch, l_in));
    exec.resetStats();
    exec.decodeStep(next);

    core::CostModel cm(sys, m, {});
    const auto timing = cm.layerTiming(
        {model::Stage::Decode, batch, l_in + 1}, policy);
    const double layers = static_cast<double>(m.numLayers);

    EXPECT_NEAR(exec.ledger().totalBytes(),
                layers * timing.pcieBytes(), 1.0)
        << policy.toString();
}

TEST_P(RuntimeVsModelTest, BusyTimesMatchComputeModel)
{
    // The executor accrues device time through the same roofline
    // descriptors; per-stage totals must match layer-timing sums
    // (the cost model adds memory-tier splits the executor's simpler
    // accrual approximates, so allow a modest tolerance).
    const Policy policy = Policy::fromMask(GetParam());
    auto exec = makeExecutor(policy);
    const std::int64_t batch = 2, l_in = 8;
    exec.prefill(prompts(batch, l_in));

    core::CostModel cm(sys, m, {});
    core::CostModelOptions serial_opts;
    serial_opts.overlap = false;
    cm.setOptions(serial_opts);
    const auto timing = cm.layerTiming(
        {model::Stage::Prefill, batch, l_in}, policy);
    const double layers = static_cast<double>(m.numLayers);

    const double cpu_expected = layers * timing.cpuTime;
    const double gpu_expected = layers * timing.gpuTime;
    if (cpu_expected > 0) {
        EXPECT_NEAR(exec.cpuDevice().busyTime(), cpu_expected,
                    0.15 * cpu_expected)
            << policy.toString();
    } else {
        EXPECT_DOUBLE_EQ(exec.cpuDevice().busyTime(), 0.0);
    }
    if (gpu_expected > 0) {
        EXPECT_NEAR(exec.gpuDevice().busyTime(), gpu_expected,
                    0.15 * gpu_expected)
            << policy.toString();
    } else {
        EXPECT_DOUBLE_EQ(exec.gpuDevice().busyTime(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, RuntimeVsModelTest,
    ::testing::Values(0b000000u,  // full GPU
                      0b111111u,  // full CPU
                      0b000110u,  // attention on CPU
                      0b111001u, 0b010101u, 0b100110u));

TEST_F(RuntimeVsModelTest, ResidencyInterpolatesBetweenExtremes)
{
    auto streamed = makeExecutor(Policy::fullGpu(), 0);
    auto half = makeExecutor(Policy::fullGpu(), 2);
    auto full = makeExecutor(Policy::fullGpu(), 4);
    streamed.prefill(prompts(2, 8));
    half.prefill(prompts(2, 8));
    full.prefill(prompts(2, 8));
    const double s = streamed.ledger().bytes(runtime::Traffic::Param);
    const double h = half.ledger().bytes(runtime::Traffic::Param);
    const double f = full.ledger().bytes(runtime::Traffic::Param);
    EXPECT_DOUBLE_EQ(f, 0.0);
    EXPECT_NEAR(h, s / 2.0, 1.0);
}

} // namespace
