/**
 * @file
 * Integration: the claims the preemption-capable scheduler and
 * chunked prefill were built to demonstrate, on the SPR-A100 system.
 *
 *  - At one explicit DDR budget, optimistic admission with preemption
 *    sustains higher steady-state batch occupancy than full-horizon
 *    admission, and at least matches its goodput across an
 *    arrival-rate sweep without giving up the p95 time-between-tokens
 *    tail.
 *  - Chunked prefill strictly lowers the p95 inter-token gap on the
 *    mixed trace versus monolithic prefill (long prompts no longer
 *    stall the running decodes for whole iterations).
 *  - The swap-to-CXL exit is only taken when the system has a CXL
 *    pool; without one every preemption must recompute.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/engine.hh"

namespace {

using namespace lia;
using serve::SchedulerPolicy;

/** One explicit DDR budget both admission policies compete under. */
constexpr double kKvBudgetBytes = 6e9;

serve::Config
sweepConfig(double per_minute, SchedulerPolicy policy)
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond = per_minute / 60.0;
    cfg.requests = 160;
    cfg.seed = 7;
    cfg.policy = policy;
    cfg.maxBatch = 32;
    cfg.kvBudgetCapBytes = kKvBudgetBytes;
    return cfg;
}

serve::Result
run(const serve::Config &cfg, bool cxl = true)
{
    const hw::SystemConfig sys =
        cxl ? hw::withCxl(hw::sprA100()) : hw::sprA100();
    serve::ServingEngine engine(sys, model::opt30b(), cfg);
    return engine.run();
}

TEST(PreemptionTest, RaisesSteadyStateOccupancyAtEqualDdrBudget)
{
    // Full-horizon admission reserves prompt + whole output up front,
    // so the budget caps concurrency pessimistically; optimistic
    // admission packs by live footprint and preempts on overshoot.
    // Long-output conversations make the two reservations differ the
    // most — and make decode growth actually breach the budget.
    serve::Config cfg = sweepConfig(120.0, SchedulerPolicy::Continuous);
    cfg.trace = trace::TraceKind::Conversation;
    cfg.kvBudgetCapBytes = 4e9;
    const auto continuous = run(cfg);
    cfg.policy = SchedulerPolicy::Preemptive;
    const auto preemptive = run(cfg);
    EXPECT_DOUBLE_EQ(continuous.kvBudgetBytes,
                     preemptive.kvBudgetBytes);
    EXPECT_GT(preemptive.metrics.batchOccupancy.mean(),
              continuous.metrics.batchOccupancy.mean());
    EXPECT_GT(preemptive.metrics.preemptions, 0u);
}

TEST(PreemptionTest, GoodputAtLeastMatchesContinuousAcrossArrivalSweep)
{
    // The KV-constrained long-output regime the preemptive scheduler
    // targets: reservations differ the most between the two admission
    // disciplines, so packing by live footprint buys real goodput.
    serve::SloTargets slo;
    slo.ttft = 30.0;
    slo.e2e = 180.0;
    for (const double per_minute : {2.0, 6.0, 12.0}) {
        serve::Config cfg =
            sweepConfig(per_minute, SchedulerPolicy::Continuous);
        cfg.trace = trace::TraceKind::Conversation;
        cfg.kvBudgetCapBytes = 4e9;
        const auto continuous = run(cfg);
        cfg.policy = SchedulerPolicy::Preemptive;
        const auto preemptive = run(cfg);
        SCOPED_TRACE(testing::Message()
                     << per_minute << " requests/minute");
        EXPECT_GE(preemptive.goodputPerSecond(slo),
                  continuous.goodputPerSecond(slo) * (1.0 - 1e-9));
        // The occupancy gain may not come out of the token tail: p95
        // time between tokens stays in the same band (preemption
        // stalls land on the preempted request, not the batch).
        if (continuous.metrics.tokenGap.count() > 0 &&
            preemptive.metrics.tokenGap.count() > 0) {
            EXPECT_LE(preemptive.metrics.tokenGap.p95(),
                      continuous.metrics.tokenGap.p95() * 1.25);
        }
    }
}

TEST(PreemptionTest, ChunkedPrefillLowersTheTokenGapTail)
{
    // Monolithic prefill stalls every running decode for the full
    // prompt; chunking bounds the stall per iteration, so the p95 of
    // the inter-token gap distribution must strictly drop.
    serve::Config cfg = sweepConfig(60.0, SchedulerPolicy::Continuous);
    cfg.kvBudgetCapBytes = 0;  // isolate chunking from preemption
    cfg.trace = trace::TraceKind::Mixed;
    const auto monolithic = run(cfg);
    cfg.prefillChunkTokens = 128;
    const auto chunked = run(cfg);
    ASSERT_GT(monolithic.metrics.tokenGap.count(), 0u);
    ASSERT_GT(chunked.metrics.tokenGap.count(), 0u);
    EXPECT_LT(chunked.metrics.tokenGap.p95(),
              monolithic.metrics.tokenGap.p95());
    EXPECT_GT(chunked.metrics.prefillChunks,
              monolithic.metrics.prefillChunks);
}

TEST(PreemptionTest, SwapExitNeedsTheCxlPool)
{
    serve::Config cfg =
        sweepConfig(120.0, SchedulerPolicy::Preemptive);
    cfg.trace = trace::TraceKind::Conversation;
    cfg.kvBudgetCapBytes = 4e9;
    const auto with_cxl = run(cfg, true);
    EXPECT_GT(with_cxl.metrics.preemptions, 0u);
    EXPECT_GT(with_cxl.metrics.swapOuts, 0u);
    EXPECT_GT(with_cxl.metrics.swapBusyTime, 0.0);

    cfg.cxlSpill = false;
    const auto without_cxl = run(cfg, false);
    EXPECT_GT(without_cxl.metrics.preemptions, 0u);
    EXPECT_EQ(without_cxl.metrics.swapOuts, 0u);
    EXPECT_EQ(without_cxl.metrics.recomputes,
              without_cxl.metrics.preemptions);
    EXPECT_DOUBLE_EQ(without_cxl.metrics.swapBusyTime, 0.0);
}

} // namespace
