/**
 * @file
 * Integration: the paper's headline end-to-end claims, checked as
 * direction + loose band (who wins, by roughly what factor).
 */

#include <gtest/gtest.h>

#include "baselines/multigpu.hh"
#include "baselines/presets.hh"
#include "energy/power.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

double
bestFlexGenRatioOnline(const hw::SystemConfig &sys,
                       const model::ModelConfig &m)
{
    double best = 0;
    for (std::int64_t l_in : {32, 512, 2016}) {
        const Scenario sc{1, l_in, 32};
        const double lia = liaEngine(sys, m).estimate(sc).latency();
        const double fg = FlexGenModel(sys, m).estimate(sc).latency();
        best = std::max(best, fg / lia);
    }
    return best;
}

TEST(AbstractClaims, SprH100UpTo5xLowerLatencyThanFlexGen)
{
    // Abstract: up to 5.1x lower latency vs the latest single-GPU
    // offloading framework on SPR-H100 (OPT-175B).
    const double ratio =
        bestFlexGenRatioOnline(hw::sprH100(), model::opt175b());
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 15.0);
}

TEST(AbstractClaims, GnrSystemsWidenTheGap)
{
    // Abstract: GNR reaches up to 19x lower latency; Table 6 reports
    // 13-24x on GNR-A100 for OPT-175B. Direction: GNR gap > SPR gap.
    const double spr =
        bestFlexGenRatioOnline(hw::sprA100(), model::opt175b());
    const double gnr =
        bestFlexGenRatioOnline(hw::gnrA100(), model::opt175b());
    EXPECT_GT(gnr, spr);
    EXPECT_GT(gnr, 6.0);
}

TEST(AbstractClaims, CxlOffloadingEnablesLargerBatchThroughput)
{
    // Abstract: CXL offloading yields up to ~1.5x throughput via a
    // ~1.8x larger feasible batch under the same DDR footprint.
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    const Scenario base{900, 32, 32};
    const auto at_900 = liaEngine(sys, m).estimate(base);

    const double same_ddr = at_900.placement.ddrBytes +
                            at_900.placement.cxlBytes;
    const auto bigger_b = model::maxBatchForCapacity(
        m, 32, 32, same_ddr, false);
    EXPECT_GT(bigger_b, 1300);
    EXPECT_LT(bigger_b, 1900);

    const Scenario big{bigger_b, 32, 32};
    const auto at_big = liaEngine(sys, m).estimate(big);
    ASSERT_TRUE(at_big.feasible);
    const double gain =
        at_big.throughput(big) / at_900.throughput(base);
    EXPECT_GT(gain, 1.05);
    EXPECT_LT(gain, 1.9);
}

TEST(Table6Claims, GnrHelpsLiaMoreThanFlexGen)
{
    // §7.6: the LIA-vs-FlexGen gap grows ~1.7x on average moving from
    // SPR to GNR, while the LIA-vs-IPEX gap shrinks.
    const auto m = model::opt30b();
    const Scenario sc{1, 512, 32};
    auto gap = [&](const hw::SystemConfig &sys, bool vs_ipex) {
        const double lia = liaEngine(sys, m).estimate(sc).latency();
        const double other =
            vs_ipex ? ipexEngine(sys, m).estimate(sc).latency()
                    : FlexGenModel(sys, m).estimate(sc).latency();
        return other / lia;
    };
    EXPECT_GT(gap(hw::gnrA100(), false), gap(hw::sprA100(), false));
    EXPECT_LT(gap(hw::gnrA100(), true), gap(hw::sprA100(), true) + 0.2);
}

TEST(Section77Claims, GeneralisesAcrossModelFamilies)
{
    // §7.7: LIA beats FlexGen by large factors on Llama2-70B,
    // Chinchilla-70B, and Bloom-176B too.
    const auto sys = hw::sprA100();
    for (const auto &m : {model::llama2_70b(), model::chinchilla70b(),
                          model::bloom176b()}) {
        const Scenario sc{1, 512, 32};
        const double lia = liaEngine(sys, m).estimate(sc).latency();
        const double fg = FlexGenModel(sys, m).estimate(sc).latency();
        const double ipex = ipexEngine(sys, m).estimate(sc).latency();
        EXPECT_GT(fg / lia, 2.0) << m.name;
        EXPECT_GE(ipex / lia, 1.0) << m.name;
    }
}

TEST(Section8Claims, GraceHopperPrefersAllGpuAndWins)
{
    // §8: with a 900 GB/s C2C link the optimal policy is all-GPU and
    // the system beats GNR-H100.
    const auto gh = hw::graceHopper();
    const auto m = model::llama2_70b();
    const Scenario sc{1, 512, 32};
    const auto est = liaEngine(gh, m).estimate(sc);
    EXPECT_EQ(est.prefillPolicy, core::Policy::fullGpu());
    // All parameter sublayers sit on the GPU; at B=1 the tiny
    // attention GEMVs can tie between devices (kernel-overhead
    // noise), so only the parameter placement is asserted.
    for (auto sub : model::allSublayers()) {
        if (model::isParamSublayer(sub)) {
            EXPECT_EQ(est.decodePolicy.device(sub),
                      core::Device::Gpu);
        }
    }
    // At batched decode the all-GPU policy wins outright.
    const auto batched = liaEngine(gh, m).estimate({64, 512, 32});
    EXPECT_EQ(batched.decodePolicy, core::Policy::fullGpu());
    // §8: 1.8-2.3x lower latency than GNR-H100.
    const auto gnr_h100 = liaEngine(hw::gnrH100(), m).estimate(sc);
    EXPECT_GT(gnr_h100.latency() / est.latency(), 1.3);
    EXPECT_LT(gnr_h100.latency() / est.latency(), 4.0);
}

TEST(Fig13Claims, GnrA100BeatsSprH100Online)
{
    // §7.6 / Fig. 13: for online inference, upgrading the CPU
    // (GNR-A100) beats upgrading the GPU (SPR-H100) by 1.4-2.0x.
    const auto m = model::opt175b();
    const Scenario sc{1, 512, 32};
    const double gnr_a100 =
        liaEngine(hw::gnrA100(), m).estimate(sc).latency();
    const double spr_h100 =
        liaEngine(hw::sprH100(), m).estimate(sc).latency();
    const double ratio = spr_h100 / gnr_a100;
    EXPECT_GT(ratio, 1.1);
    EXPECT_LT(ratio, 3.0);
}

TEST(Fig13Claims, SprH100WinsLargeBatchOffline)
{
    // Fig. 13: at B=900 the GPU-heavier policy favours SPR-H100
    // (GNR-A100 reaches ~70% of its throughput).
    const auto m = model::opt30b();
    const Scenario sc{900, 256, 32};
    const auto gnr = liaEngine(hw::gnrA100(), m).estimate(sc);
    const auto h100 = liaEngine(hw::sprH100(), m).estimate(sc);
    EXPECT_LT(gnr.throughput(sc) / h100.throughput(sc), 1.15);
}

TEST(EnergyClaims, LiaMostEfficientOnBothAxes)
{
    // Conclusion: up to 5.8x vs IPEX and 10.3x vs FlexGen in
    // energy/token; verify the ordering plus sane magnitudes.
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    energy::PowerModel power(sys);
    double worst_ipex = 0, worst_fg = 0;
    for (std::int64_t l_in : {32, 512}) {
        const Scenario sc{1, l_in, 32};
        const double lia = power.energyPerToken(
            liaEngine(sys, m).estimate(sc), sc);
        worst_ipex = std::max(
            worst_ipex, power.energyPerToken(
                            ipexEngine(sys, m).estimate(sc), sc) /
                            lia);
        worst_fg = std::max(
            worst_fg, power.energyPerToken(
                          FlexGenModel(sys, m).estimate(sc), sc) /
                          lia);
    }
    EXPECT_GT(worst_ipex, 1.1);
    EXPECT_GT(worst_fg, 1.6);
    EXPECT_LT(worst_fg, 20.0);
}

} // namespace
