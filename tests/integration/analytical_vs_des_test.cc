/**
 * @file
 * Integration: the engine's closed-form stage estimates against the
 * discrete-event simulator executing the same plan.
 */

#include <gtest/gtest.h>

#include "baselines/presets.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "sim/pipeline.hh"

namespace {

using namespace lia;
using namespace lia::core;
using lia::model::Stage;
using lia::model::Workload;

struct Case
{
    std::int64_t batch;
    std::int64_t context;
    Stage stage;
};

class AnalyticalVsDesTest : public ::testing::TestWithParam<Case>
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt30b();
};

TEST_P(AnalyticalVsDesTest, OptimalPlanAgreesWithinTolerance)
{
    const Case c = GetParam();
    CostModel cm(sys, m, {});
    PolicyOptimizer opt(cm);
    Workload w{c.stage, c.batch, c.context};
    const auto choice = opt.optimize(w);

    const double closed_form =
        static_cast<double>(m.numLayers) *
        choice.timing.overlappedTime();
    const auto des = sim::simulateStage(cm, w, choice.policy,
                                        choice.policy, 0);
    EXPECT_NEAR(des.makespan, closed_form, 0.15 * closed_form)
        << choice.policy.toString();
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, AnalyticalVsDesTest,
    ::testing::Values(Case{1, 256, Stage::Decode},
                      Case{64, 256, Stage::Decode},
                      Case{900, 128, Stage::Decode},
                      Case{1, 512, Stage::Prefill},
                      Case{64, 256, Stage::Prefill},
                      Case{8, 1024, Stage::Prefill}));

TEST(AnalyticalVsDesResidency, ResidentPrefixMatchesEngineMixing)
{
    // DES with R resident layers should land between the all-streamed
    // and all-resident closed forms.
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    CostModel cm(sys, m, {});
    Workload w{Stage::Decode, 1, 256};
    const Policy policy = Policy::fullGpu();
    const double layers = static_cast<double>(m.numLayers);

    const double all_stream =
        layers * cm.layerTiming(w, policy, false).overlappedTime();
    const double all_res =
        layers * cm.layerTiming(w, policy, true).overlappedTime();
    const auto des = sim::simulateStage(cm, w, policy, policy, 24);
    EXPECT_LT(des.makespan, all_stream);
    EXPECT_GT(des.makespan, all_res);
}

TEST(AnalyticalVsDesContention, DesCapturesLinkContention)
{
    // A policy that streams parameters *and* KV saturates the link;
    // DES must reflect the shared-channel serialisation that the
    // closed form models as additive occupancy.
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    CostModel cm(sys, m, {});
    Workload w{Stage::Decode, 64, 512};
    const Policy policy = Policy::fullGpu();
    const auto timing = cm.layerTiming(w, policy);
    const auto des = sim::simulateStage(cm, w, policy, policy, 0);
    const double link_occupancy =
        static_cast<double>(m.numLayers) *
        (timing.prefetchPcieTime + timing.inlinePcieTime);
    EXPECT_GE(des.makespan, link_occupancy * 0.999);
}

} // namespace
