/**
 * @file
 * Cross-product property sweep: invariants that must hold for every
 * (system, model, scenario) combination, exercised with parameterized
 * gtest over the full preset catalog.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/presets.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

namespace {

using namespace lia;
using core::Scenario;

using SweepParam = std::tuple<std::string,   // system
                              std::string,   // model
                              std::int64_t,  // batch
                              std::int64_t>; // l_in

class EngineSweepTest : public ::testing::TestWithParam<SweepParam>
{
  protected:
    hw::SystemConfig sys = hw::systemByName(std::get<0>(GetParam()));
    model::ModelConfig m = model::modelByName(std::get<1>(GetParam()));
    Scenario sc{std::get<2>(GetParam()), std::get<3>(GetParam()), 32};
};

TEST_P(EngineSweepTest, EstimatesAreFiniteAndPositive)
{
    const auto est = baselines::liaEngine(sys, m).estimate(sc);
    EXPECT_GT(est.prefillTime, 0);
    EXPECT_GT(est.decodeTime, 0);
    EXPECT_LT(est.latency(), 1e7);
    EXPECT_GT(est.throughput(sc), 0);
}

TEST_P(EngineSweepTest, LiaNeverLosesToForcedBaselinePolicies)
{
    // LIA optimizes over a superset of every fixed policy choice, so
    // with identical substrate options it can never be slower.
    const auto lia_est = baselines::liaEngine(sys, m).estimate(sc);
    core::EngineConfig forced;
    forced.optimizePolicies = false;
    forced.forcedPrefillPolicy = core::Policy::fullGpu();
    forced.forcedDecodePolicy = core::Policy::attentionOnCpu();
    forced.costOptions.executionAwareObjective = true;
    const auto fixed =
        core::EngineModel(sys, m, forced).estimate(sc);
    EXPECT_LE(lia_est.latency(), fixed.latency() * 1.001);
}

TEST_P(EngineSweepTest, MoreOutputTokensMonotone)
{
    auto engine = baselines::liaEngine(sys, m);
    const auto short_est = engine.estimate(sc);
    Scenario longer = sc;
    longer.lOut = 64;
    const auto long_est = engine.estimate(longer);
    EXPECT_GT(long_est.decodeTime, short_est.decodeTime);
}

TEST_P(EngineSweepTest, BreakdownBoundsLatency)
{
    const auto est = baselines::liaEngine(sys, m).estimate(sc);
    const double serial_sum = est.breakdown.cpuTime +
                              est.breakdown.gpuTime +
                              est.breakdown.comTime;
    EXPECT_GE(serial_sum, est.latency() - 1e-9);
    // Overlap cannot beat the single largest component either.
    EXPECT_GE(est.latency(),
              std::max({est.breakdown.cpuTime, est.breakdown.gpuTime,
                        est.breakdown.comTime}) /
                  2.0);
}

TEST_P(EngineSweepTest, PolicyBitsImplyTraffic)
{
    const auto est = baselines::liaEngine(sys, m).estimate(sc);
    if (est.prefillPolicy == core::Policy::fullCpu() &&
        est.decodePolicy == core::Policy::fullCpu() &&
        est.residency.residentLayers == 0) {
        EXPECT_DOUBLE_EQ(est.pcieBytes, 0.0);
    }
    if (est.pcieBytes == 0.0) {
        EXPECT_DOUBLE_EQ(est.breakdown.comTime, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, EngineSweepTest,
    ::testing::Combine(
        ::testing::Values("SPR-A100", "SPR-H100", "GNR-A100",
                          "SPR-A100+CXL"),
        ::testing::Values("OPT-30B", "OPT-175B", "Llama2-70B"),
        ::testing::Values<std::int64_t>(1, 64),
        ::testing::Values<std::int64_t>(128, 1024)));

class OptimizerSweepTest : public ::testing::TestWithParam<SweepParam>
{
  protected:
    hw::SystemConfig sys = hw::systemByName(std::get<0>(GetParam()));
    model::ModelConfig m = model::modelByName(std::get<1>(GetParam()));
};

TEST_P(OptimizerSweepTest, OptimumIsGlobalOverAllPolicies)
{
    core::CostModel cm(sys, m, {});
    core::PolicyOptimizer opt(cm);
    model::Workload w{model::Stage::Decode, std::get<2>(GetParam()),
                      std::get<3>(GetParam())};
    const auto best = opt.optimize(w);
    for (unsigned mask = 0; mask < core::Policy::kCount; ++mask) {
        const auto t =
            cm.layerTiming(w, core::Policy::fromMask(mask));
        EXPECT_LE(best.timing.serialTime(), t.serialTime() + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, OptimizerSweepTest,
    ::testing::Combine(::testing::Values("SPR-A100", "GNR-H100"),
                       ::testing::Values("OPT-66B", "Bloom-176B",
                                         "MoE-8x7B"),
                       ::testing::Values<std::int64_t>(1, 256),
                       ::testing::Values<std::int64_t>(64, 512)));

} // namespace
