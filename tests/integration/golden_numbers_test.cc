/**
 * @file
 * Golden-number regression tests.
 *
 * EXPERIMENTS.md publishes specific measured values for the key
 * exhibits; these tests pin them (with a few percent of slack) so a
 * calibration or model change that silently moves the reported
 * reproduction is caught at test time. When a deliberate change moves
 * a number, update BOTH this file and EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "baselines/presets.hh"
#include "hw/catalog.hh"
#include "hw/microbench.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using core::Scenario;

constexpr double kSlack = 0.03;  // 3% drift tolerance

void
expectNear(double actual, double golden, const char *what)
{
    EXPECT_NEAR(actual, golden, kSlack * golden) << what;
}

TEST(GoldenNumbers, Table4AllOptimizations)
{
    // EXPERIMENTS.md: 5.59 / 23.5 / 167 seconds at B = 1 / 64 / 900.
    auto lia = baselines::liaEngine(hw::sprA100(), model::opt30b());
    expectNear(lia.estimate({1, 256, 32}).latency(), 5.59, "B=1");
    expectNear(lia.estimate({64, 256, 32}).latency(), 23.49, "B=64");
    expectNear(lia.estimate({900, 256, 32}).latency(), 165.7,
               "B=900");
}

TEST(GoldenNumbers, Table5LiaComponentsAtB1)
{
    // EXPERIMENTS.md: LIA 3.8 / 1.7 / 0.0 seconds CPU / GPU / com.
    auto engine = baselines::liaEngineAblated(
        hw::sprA100(), model::opt30b(), true, false, true);
    const auto breakdown = engine.estimate({1, 256, 32}).breakdown;
    expectNear(breakdown.cpuTime, 3.8, "cpu");
    expectNear(breakdown.gpuTime, 1.7, "gpu");
    EXPECT_LT(breakdown.comTime, 0.2);
}

TEST(GoldenNumbers, Fig5SprAmxThroughput)
{
    // EXPERIMENTS.md: SPR-AMX 22.4 TFLOPS max GEMM, 197 GFLOPS GEMV.
    const auto spr = hw::amxSpr();
    expectNear(hw::gemmThroughput(spr, {36864, 12288}) / 1e12, 23.08,
               "gemm");
    expectNear(
        hw::gemvThroughput(spr, {256 * 96, 128, 1024}) / 1e9, 196.8,
        "gemv");
}

TEST(GoldenNumbers, Table3OffloadedFractions)
{
    // EXPERIMENTS.md: 42.1% / 14.3% offloaded at L_out = 32 / 256.
    const auto sys = hw::withCxl(hw::sprA100());
    auto lia = baselines::liaEngine(sys, model::opt30b());
    expectNear(
        lia.estimate({900, 32, 32}).placement.offloadedFraction(),
        0.421, "L_out=32");
    expectNear(
        lia.estimate({900, 32, 256}).placement.offloadedFraction(),
        0.143, "L_out=256");
}

TEST(GoldenNumbers, Fig10OnlineRatios175b)
{
    // EXPERIMENTS.md: OPT-175B on SPR-A100 at L_in=512: ~1.08x IPEX,
    // ~6.1x FlexGen.
    const auto sys = hw::sprA100();
    const auto m = model::opt175b();
    const Scenario sc{1, 512, 32};
    const double lia = baselines::liaEngine(sys, m)
                           .estimate(sc).latency();
    expectNear(baselines::ipexEngine(sys, m).estimate(sc).latency() /
                   lia,
               1.08, "vs IPEX");
    expectNear(
        baselines::FlexGenModel(sys, m).estimate(sc).latency() / lia,
        6.14, "vs FlexGen");
}

TEST(GoldenNumbers, Fig9Crossovers)
{
    // EXPERIMENTS.md: decode B* ~653, prefill B*L ~662 on SPR-A100.
    core::CostModel cm(hw::sprA100(), model::opt175b(), {});
    core::PolicyOptimizer opt(cm);
    auto bisect = [&](auto make_workload) {
        std::int64_t lo = 1, hi = 4096;
        while (lo < hi) {
            const auto mid = (lo + hi) / 2;
            if (opt.optimize(make_workload(mid)).policy ==
                core::Policy::fullCpu())
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    };
    const auto decode = bisect([](std::int64_t b) {
        return model::Workload{model::Stage::Decode, b, 512};
    });
    const auto prefill = bisect([](std::int64_t l) {
        return model::Workload{model::Stage::Prefill, 1, l};
    });
    EXPECT_NEAR(static_cast<double>(decode), 653, 25);
    EXPECT_NEAR(static_cast<double>(prefill), 662, 25);
}

} // namespace
