/**
 * @file
 * Integration: the continuous-batching claims the serving subsystem
 * was built to demonstrate. On an offered-load sweep of the mixed
 * online trace, iteration-level batching must strictly dominate the
 * static FIFO baseline (lower p95 response, at least equal token
 * throughput) until its own saturation point, sustain at least twice
 * the static policy's arrival rate at equal p95 latency, and the
 * SLO-aware variant must keep p95 TTFT within target at overloads
 * where unconstrained continuous batching blows through it.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/engine.hh"

namespace {

using namespace lia;
using serve::SchedulerPolicy;

constexpr double kRespSlo = 120.0;
constexpr double kTtftSlo = 20.0;

serve::Result
runAt(double per_minute, SchedulerPolicy policy,
      std::size_t requests = 250)
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond = per_minute / 60.0;
    cfg.requests = requests;
    cfg.seed = 1;
    cfg.policy = policy;
    cfg.maxBatch = 64;
    cfg.slo.ttft = kTtftSlo;
    cfg.slo.tbt = 0.5;
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

TEST(ContinuousBatchingTest, DominatesStaticUntilSaturation)
{
    // Same arrival sequence (same seed) policy-for-policy: continuous
    // batching must beat static FIFO on tail latency at every offered
    // load, and on throughput once there is queueing to exploit.
    for (double rate : {2.0, 4.0, 6.0, 8.0, 14.0}) {
        const auto fixed = runAt(rate, SchedulerPolicy::StaticFifo);
        const auto cont = runAt(rate, SchedulerPolicy::Continuous);
        EXPECT_LT(cont.metrics.responseTime.p95(),
                  fixed.metrics.responseTime.p95())
            << "rate " << rate << "/min";
        EXPECT_LT(cont.metrics.ttft.p95(), fixed.metrics.ttft.p95())
            << "rate " << rate << "/min";
        if (rate >= 4.0) {
            EXPECT_GT(cont.metrics.tokensPerSecond(),
                      fixed.metrics.tokensPerSecond())
                << "rate " << rate << "/min";
        }
    }
}

TEST(ContinuousBatchingTest, SustainsAtLeastTwiceTheStaticRate)
{
    // Sustainable rate: highest offered load whose p95 response stays
    // within a common bound — "equal p95 latency" for both policies.
    auto sustainable = [](SchedulerPolicy policy) {
        double best = 0;
        for (double rate : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
            const auto result = runAt(rate, policy);
            if (result.metrics.responseTime.p95() <= kRespSlo)
                best = std::max(best, rate);
        }
        return best;
    };
    const double fixed = sustainable(SchedulerPolicy::StaticFifo);
    const double cont = sustainable(SchedulerPolicy::Continuous);
    EXPECT_GE(fixed, 1.0);  // the baseline can serve *something*
    EXPECT_GE(cont, 2.0 * fixed)
        << "continuous " << cont << "/min vs static " << fixed
        << "/min";
}

TEST(ContinuousBatchingTest, SloAwareKeepsTtftWhereContinuousFails)
{
    // At heavy overload the unconstrained batcher queues everyone and
    // p95 TTFT explodes; the SLO-aware policy sheds instead, keeping
    // admitted requests inside the target and earning more goodput.
    const double rate = 18.0;
    const auto cont = runAt(rate, SchedulerPolicy::Continuous);
    const auto slo = runAt(rate, SchedulerPolicy::SloAware);

    ASSERT_GT(cont.metrics.ttft.p95(), kTtftSlo)
        << "sweep point not overloaded enough to exercise shedding";
    EXPECT_LE(slo.metrics.ttft.p95(), kTtftSlo);
    EXPECT_GT(slo.metrics.shedSlo, 0u);

    serve::SloTargets slo_targets;
    slo_targets.ttft = kTtftSlo;
    slo_targets.tbt = 0.5;
    EXPECT_GT(slo.goodputPerSecond(slo_targets),
              cont.goodputPerSecond(slo_targets));
}

TEST(ContinuousBatchingTest, StaticMatchesContinuousWhenBatchIsOne)
{
    // With maxBatch = 1 the two disciplines describe the same serial
    // server, so the whole sweep must coincide exactly.
    serve::Config cfg;
    cfg.arrivalRatePerSecond = 2.0 / 60.0;
    cfg.requests = 60;
    cfg.seed = 3;
    cfg.maxBatch = 1;
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();

    cfg.policy = SchedulerPolicy::StaticFifo;
    const auto fixed = serve::ServingEngine(sys, m, cfg).run();
    cfg.policy = SchedulerPolicy::Continuous;
    const auto cont = serve::ServingEngine(sys, m, cfg).run();
    EXPECT_DOUBLE_EQ(fixed.metrics.makespan, cont.metrics.makespan);
    EXPECT_DOUBLE_EQ(fixed.metrics.responseTime.mean(),
                     cont.metrics.responseTime.mean());
    EXPECT_EQ(fixed.metrics.iterations, cont.metrics.iterations);
}

} // namespace
