/**
 * @file
 * Tests for the name-based system/model lookups used by the CLI.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;

TEST(SystemLookupTest, EveryKnownNameResolves)
{
    for (const auto &name : hw::knownSystemNames()) {
        const auto sys = hw::systemByName(name);
        EXPECT_EQ(sys.name, name);
    }
}

TEST(SystemLookupTest, CxlSuffixAttachesPool)
{
    const auto sys = hw::systemByName("SPR-A100+CXL");
    EXPECT_TRUE(sys.cxl.present());
    EXPECT_FALSE(hw::systemByName("SPR-A100").cxl.present());
}

TEST(SystemLookupTest, UnknownNameIsFatal)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(hw::systemByName("SPR-B200"), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(ModelLookupTest, EveryKnownNameResolves)
{
    for (const auto &name : model::knownModelNames()) {
        const auto m = model::modelByName(name);
        EXPECT_EQ(m.name, name);
        EXPECT_NO_THROW(m.validate());
    }
}

TEST(ModelLookupTest, PrecisionSuffixes)
{
    const auto int8 = model::modelByName("OPT-30B-int8");
    EXPECT_DOUBLE_EQ(int8.weightBytesPerElement, 1.0);
    const auto int4 = model::modelByName("Llama2-70B-int4");
    EXPECT_DOUBLE_EQ(int4.weightBytesPerElement, 0.5);
    EXPECT_EQ(int4.name, "Llama2-70B-int4");
}

TEST(ModelLookupTest, UnknownNameIsFatal)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(model::modelByName("GPT-5"), std::runtime_error);
    detail::setThrowOnError(false);
}

} // namespace
