/**
 * @file
 * Unit tests for hardware descriptor primitives.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "base/units.hh"
#include "hw/device.hh"

namespace {

using namespace lia;
using namespace lia::hw;
using namespace lia::units;

TEST(EfficiencyCurveTest, ConstantCurveIsFlat)
{
    EfficiencyCurve c(0.5);
    EXPECT_DOUBLE_EQ(c.at(1), 0.5);
    EXPECT_DOUBLE_EQ(c.at(1e9), 0.5);
}

TEST(EfficiencyCurveTest, ClampsBelowAndAboveRange)
{
    EfficiencyCurve c({{10, 0.2}, {1000, 0.8}});
    EXPECT_DOUBLE_EQ(c.at(1), 0.2);
    EXPECT_DOUBLE_EQ(c.at(1e7), 0.8);
}

TEST(EfficiencyCurveTest, InterpolatesLogLinearly)
{
    EfficiencyCurve c({{10, 0.2}, {1000, 0.8}});
    // Midpoint in log10 space: metric 100 -> efficiency 0.5.
    EXPECT_NEAR(c.at(100), 0.5, 1e-9);
}

TEST(EfficiencyCurveTest, MonotoneInputsInterpolateWithinBounds)
{
    EfficiencyCurve c({{64, 0.1}, {512, 0.3}, {4096, 0.5}});
    double prev = 0.0;
    for (double m = 64; m <= 4096; m *= 1.3) {
        const double e = c.at(m);
        EXPECT_GE(e, prev - 1e-12);
        EXPECT_GE(e, 0.1);
        EXPECT_LE(e, 0.5);
        prev = e;
    }
}

TEST(EfficiencyCurveTest, RejectsUnsortedPoints)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(EfficiencyCurve({{100, 0.5}, {10, 0.6}}),
                 std::logic_error);
    detail::setThrowOnError(false);
}

TEST(EfficiencyCurveTest, RejectsOutOfRangeEfficiency)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(EfficiencyCurve(1.5), std::logic_error);
    EXPECT_THROW(EfficiencyCurve({{10, 0.0}}), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(ComputeDeviceTest, MatmulTimeIsRooflineSum)
{
    ComputeDevice d;
    d.name = "unit";
    d.peakMatmulThroughput = 100 * GFLOPS;
    d.memoryBandwidth = 10 * GB_s;
    d.kernelOverhead = 1e-6;
    // flat efficiency 1.0 defaults
    const double t = d.matmulTime(1e9, 1e9, 1000);
    EXPECT_NEAR(t, 1e-6 + 1e9 / 100e9 + 1e9 / 10e9, 1e-12);
}

TEST(ComputeDeviceTest, ThroughputInverseOfTime)
{
    ComputeDevice d;
    d.name = "unit";
    d.peakMatmulThroughput = 100 * GFLOPS;
    d.memoryBandwidth = 10 * GB_s;
    const double th = d.matmulThroughput(1e9, 1e6, 1000);
    EXPECT_NEAR(th, 1e9 / d.matmulTime(1e9, 1e6, 1000), 1e-3);
}

TEST(ComputeDeviceTest, MoreBytesNeverFaster)
{
    ComputeDevice d;
    d.name = "unit";
    d.peakMatmulThroughput = 100 * GFLOPS;
    d.memoryBandwidth = 10 * GB_s;
    EXPECT_LE(d.matmulTime(1e9, 1e6, 64), d.matmulTime(1e9, 1e9, 64));
}

TEST(LinkTest, TransferTimeLinearInBytes)
{
    Link l{"test", 10 * GB_s, 5 * us};
    EXPECT_NEAR(l.transferTime(10e9), 5e-6 + 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(l.transferTime(0), 0.0);
}

TEST(LinkTest, LatencyDominatesSmallTransfers)
{
    Link l{"test", 10 * GB_s, 10 * us};
    EXPECT_GT(l.transferTime(1), 10e-6);
    EXPECT_LT(l.transferTime(1), 11e-6);
}

TEST(CxlPoolTest, InterleavingAggregatesBandwidth)
{
    CxlPool p;
    p.deviceCount = 2;
    p.perDeviceBandwidth = 17 * GB_s;
    p.perDeviceCapacity = 128 * GiB;
    EXPECT_DOUBLE_EQ(p.interleavedBandwidth(), 34e9);
    EXPECT_DOUBLE_EQ(p.totalCapacity(), 2 * 128 * GiB);
    EXPECT_TRUE(p.present());
}

TEST(CxlPoolTest, EmptyPoolAbsent)
{
    CxlPool p;
    EXPECT_FALSE(p.present());
    EXPECT_DOUBLE_EQ(p.interleavedBandwidth(), 0.0);
}

} // namespace
