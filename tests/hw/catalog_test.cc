/**
 * @file
 * Calibration tests: the catalog must reproduce the paper's §4
 * microbenchmark relationships (Fig. 5 and surrounding text).
 */

#include <gtest/gtest.h>

#include "hw/catalog.hh"
#include "hw/microbench.hh"

namespace {

using namespace lia::hw;

constexpr std::int64_t kDModel = 12288;  // OPT-175B

double
gemmMax(const ComputeDevice &dev)
{
    double best = 0;
    for (std::int64_t rows = 64; rows <= 36864; rows *= 2)
        best = std::max(best, gemmThroughput(dev, {rows, kDModel}));
    return best;
}

TEST(CatalogCalibration, SprAmxPeakIs90TFlops)
{
    EXPECT_NEAR(amxSpr().peakMatmulThroughput, 90.1e12, 1e9);
}

TEST(CatalogCalibration, SprAmxMeasuredGemmNear20TFlops)
{
    // Abstract: "matrix multiplication throughput of 20 TFLOPS".
    EXPECT_NEAR(gemmMax(amxSpr()), 20e12, 5e12);
}

TEST(CatalogCalibration, GnrMeasuredGemmNear40TFlops)
{
    // Abstract: "40 TFLOPS" on Granite Rapids, ~2.4x SPR (§4.1).
    const double gnr = gemmMax(amxGnr());
    const double spr = gemmMax(amxSpr());
    EXPECT_NEAR(gnr, 44e12, 9e12);
    EXPECT_NEAR(gnr / spr, 2.2, 0.5);
}

TEST(CatalogCalibration, AmxBeatsAvxByFourToFiveTimes)
{
    // §4.1: measured maximum 4.5x higher than AVX512.
    const double ratio = gemmMax(amxSpr()) / gemmMax(avx512Spr());
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 6.5);
}

TEST(CatalogCalibration, AmxPeakIsEightTimesAvxPeak)
{
    EXPECT_NEAR(amxSpr().peakMatmulThroughput /
                    avx512Spr().peakMatmulThroughput,
                8.0, 0.5);
}

TEST(CatalogCalibration, SprWithinPaperFractionOfRecentGpus)
{
    // §4.1: SPR-AMX reaches 4-11% of H100 and 7-15% of A100 GEMM.
    const double spr = gemmMax(amxSpr());
    const double vs_h100 = spr / gemmMax(gpuH100());
    const double vs_a100 = spr / gemmMax(gpuA100());
    EXPECT_GT(vs_h100, 0.03);
    EXPECT_LT(vs_h100, 0.13);
    EXPECT_GT(vs_a100, 0.06);
    EXPECT_LT(vs_a100, 0.17);
}

TEST(CatalogCalibration, GemmRankingMatchesFig5)
{
    // H100 > A100 > V100 > GNR > SPR > P100 > AVX512 at peak sizes.
    const double h100 = gemmMax(gpuH100());
    const double a100 = gemmMax(gpuA100());
    const double v100 = gemmMax(gpuV100());
    const double gnr = gemmMax(amxGnr());
    const double spr = gemmMax(amxSpr());
    const double p100 = gemmMax(gpuP100());
    const double avx = gemmMax(avx512Spr());
    EXPECT_GT(h100, a100);
    EXPECT_GT(a100, v100);
    EXPECT_GT(v100, gnr);
    EXPECT_GT(gnr, spr);
    EXPECT_GT(spr, p100);
    EXPECT_GT(p100, avx);
}

TEST(CatalogCalibration, SprGemvNear199GFlops)
{
    // §4.2: peak GEMV throughput of 199 GFLOPS on SPR.
    BatchedGemvShape shape{256 * 96, 128, 1024};
    EXPECT_NEAR(gemvThroughput(amxSpr(), shape), 199e9, 30e9);
}

TEST(CatalogCalibration, GemvAmxMatchesAvxWithinTenPercent)
{
    // §4.2: memory-bound GEMV differs by <10% between AMX and AVX512.
    BatchedGemvShape shape{64 * 96, 128, 512};
    const double amx = gemvThroughput(amxSpr(), shape);
    const double avx = gemvThroughput(avx512Spr(), shape);
    EXPECT_NEAR(amx / avx, 1.0, 0.1);
}

TEST(CatalogCalibration, GnrGemvSeventyPercentFaster)
{
    // §4.2: GNR improves GEMV throughput by ~70% via 12 channels.
    BatchedGemvShape shape{256 * 96, 128, 1024};
    const double ratio = gemvThroughput(amxGnr(), shape) /
                         gemvThroughput(amxSpr(), shape);
    EXPECT_NEAR(ratio, 1.7, 0.25);
}

TEST(CatalogCalibration, GemvRankingMatchesFig5)
{
    // H100 > A100 > V100 > P100 > GNR > SPR at large shapes.
    BatchedGemvShape shape{900 * 96, 128, 1024};
    const double h100 = gemvThroughput(gpuH100(), shape);
    const double a100 = gemvThroughput(gpuA100(), shape);
    const double v100 = gemvThroughput(gpuV100(), shape);
    const double p100 = gemvThroughput(gpuP100(), shape);
    const double gnr = gemvThroughput(amxGnr(), shape);
    const double spr = gemvThroughput(amxSpr(), shape);
    EXPECT_GT(h100, a100);
    EXPECT_GT(a100, v100);
    EXPECT_GT(v100, p100);
    EXPECT_GT(p100, gnr);
    EXPECT_GT(gnr, spr);
}

TEST(CatalogCalibration, SprGemvFractionOfH100RisesAtSmallShapes)
{
    // §4.2: 15% of H100 at large shapes, up to ~35% at small ones.
    BatchedGemvShape large{900 * 96, 128, 1024};
    BatchedGemvShape small{4 * 96, 128, 128};
    const double frac_large = gemvThroughput(amxSpr(), large) /
                              gemvThroughput(gpuH100(), large);
    const double frac_small = gemvThroughput(amxSpr(), small) /
                              gemvThroughput(gpuH100(), small);
    EXPECT_LT(frac_large, 0.25);
    EXPECT_GT(frac_small, frac_large * 1.5);
}

TEST(CatalogCalibration, TwoSocketGnrAddsEightyPercent)
{
    const double ratio = amxGnr2S().peakMatmulThroughput /
                         amxGnr().peakMatmulThroughput;
    EXPECT_NEAR(ratio, 1.8, 0.01);
}

TEST(CatalogCalibration, GraceCpuThirtyTimesBelowGnr)
{
    // §8 footnote: Grace SVE2 peak is 6.91 TFLOPS.
    EXPECT_NEAR(graceCpu().peakMatmulThroughput, 6.91e12, 1e9);
}

TEST(CatalogCalibration, CxlPoolMatchesTable2)
{
    const CxlPool pool = cxlSamsungX2();
    EXPECT_EQ(pool.deviceCount, 2);
    EXPECT_NEAR(pool.perDeviceBandwidth, 17e9, 1e6);
    EXPECT_NEAR(pool.totalCapacity(), 2.0 * 128 * 1024.0 * 1024 * 1024,
                1.0);
    // Latency 140-170ns above DDR's ~100ns.
    EXPECT_GT(pool.latency, 200e-9);
    EXPECT_LT(pool.latency, 300e-9);
}

TEST(CatalogCalibration, LinksOrderedByGeneration)
{
    EXPECT_LT(pcie4x16().bandwidth, pcie5x16().bandwidth);
    EXPECT_LT(pcie5x16().bandwidth, nvlink3().bandwidth);
    EXPECT_LT(nvlink3().bandwidth, nvlinkC2C().bandwidth);
}

TEST(CatalogCalibration, Opt175bParamTransferNearFiveSeconds)
{
    // Footnote 2: moving OPT-175B's ~350 GB over PCIe 5.0 costs ~5 s.
    const double t = pcie5x16().transferTime(350e9);
    EXPECT_GT(t, 4.5);
    EXPECT_LT(t, 8.0);
}

} // namespace
