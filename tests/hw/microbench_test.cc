/**
 * @file
 * Unit and property tests for the microbenchmark shapes and model.
 */

#include <gtest/gtest.h>

#include "hw/catalog.hh"
#include "hw/microbench.hh"

namespace {

using namespace lia::hw;

TEST(GemmShapeTest, FlopCountMatchesFc1Formula)
{
    // (rows, d) x (d, 4d) -> 8 * rows * d^2 FLOPs.
    GemmShape s{128, 1024};
    EXPECT_DOUBLE_EQ(s.flops(), 8.0 * 128 * 1024 * 1024);
}

TEST(GemmShapeTest, BytesCountOperandsAndResult)
{
    GemmShape s{2, 8};
    // 2*(2*8 + 8*32 + 2*32) elements at 2 bytes each.
    EXPECT_DOUBLE_EQ(s.bytes(), 2.0 * (16 + 256 + 64));
}

TEST(BatchedGemvShapeTest, FlopCountMatchesQkFormula)
{
    BatchedGemvShape s{96, 128, 512};
    EXPECT_DOUBLE_EQ(s.flops(), 2.0 * 96 * 128 * 512);
}

TEST(BatchedGemvShapeTest, GemvIntensityNearOne)
{
    // Q x K^T is the paper's most memory-bound sublayer: ~1 FLOP/byte.
    BatchedGemvShape s{96 * 64, 128, 1024};
    EXPECT_NEAR(s.flops() / s.bytes(), 1.0, 0.05);
}

class GemmMonotonicityTest
    : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(GemmMonotonicityTest, ThroughputGrowsWithRows)
{
    // Larger GEMMs always achieve >= throughput on every device.
    const std::int64_t rows = GetParam();
    for (const auto &dev :
         {avx512Spr(), amxSpr(), amxGnr(), gpuP100(), gpuV100(),
          gpuA100(), gpuH100()}) {
        const double small = gemmThroughput(dev, {rows, 12288});
        const double large = gemmThroughput(dev, {rows * 4, 12288});
        EXPECT_GE(large, small * 0.999) << dev.name << " rows=" << rows;
    }
}

INSTANTIATE_TEST_SUITE_P(RowSweep, GemmMonotonicityTest,
                         ::testing::Values(64, 128, 256, 512, 1024, 2048,
                                           4096, 8192));

class GemvBandwidthBoundTest
    : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(GemvBandwidthBoundTest, ThroughputNeverExceedsBandwidth)
{
    // flops/bytes ~ 1, so achieved GEMV FLOP/s can't beat memory B/s.
    const std::int64_t batches = GetParam();
    for (const auto &dev : {amxSpr(), amxGnr(), gpuA100(), gpuH100()}) {
        BatchedGemvShape s{batches, 128, 512};
        EXPECT_LE(gemvThroughput(dev, s), dev.memoryBandwidth * 1.1)
            << dev.name;
    }
}

INSTANTIATE_TEST_SUITE_P(BatchSweep, GemvBandwidthBoundTest,
                         ::testing::Values(96, 960, 9600, 96000));

TEST(MicrobenchTest, ThroughputBelowPeakEverywhere)
{
    for (const auto &dev : {amxSpr(), gpuA100(), gpuH100()}) {
        for (std::int64_t rows = 64; rows <= 36864; rows *= 4) {
            EXPECT_LT(gemmThroughput(dev, {rows, 12288}),
                      dev.peakMatmulThroughput)
                << dev.name;
        }
    }
}

TEST(MicrobenchTest, KernelOverheadHurtsSmallGpuShapes)
{
    // The same tiny GEMV on the GPU is slower relative to its peak
    // than on the CPU (§4.2's kernel-invocation overhead effect).
    BatchedGemvShape tiny{96, 64, 32};
    const auto cpu = amxSpr();
    const auto gpu = gpuH100();
    const double cpu_frac = gemvThroughput(cpu, tiny) /
                            (cpu.memoryBandwidth);
    const double gpu_frac = gemvThroughput(gpu, tiny) /
                            (gpu.memoryBandwidth);
    EXPECT_GT(cpu_frac, gpu_frac);
}

} // namespace
