/**
 * @file
 * Unit tests for system configurations.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"

namespace {

using namespace lia;
using namespace lia::hw;

TEST(SystemTest, SprA100MatchesTable2)
{
    const auto s = sprA100();
    EXPECT_EQ(s.cpu.name, "SPR-AMX");
    EXPECT_EQ(s.gpu.name, "A100");
    EXPECT_EQ(s.hostLink.name, "PCIe 4.0 x16");
    EXPECT_NEAR(s.cpuMemory.capacity, 512.0 * 1024 * 1024 * 1024, 1.0);
    EXPECT_FALSE(s.cxl.present());
    EXPECT_EQ(s.gpuCount, 1);
}

TEST(SystemTest, SprH100UsesPcie5)
{
    const auto s = sprH100();
    EXPECT_EQ(s.gpu.name, "H100");
    EXPECT_EQ(s.hostLink.name, "PCIe 5.0 x16");
}

TEST(SystemTest, WithCxlAttachesPoolAndRenames)
{
    const auto s = withCxl(sprA100());
    EXPECT_TRUE(s.cxl.present());
    EXPECT_EQ(s.name, "SPR-A100+CXL");
}

TEST(SystemTest, CpuReadBandwidthFromDdr)
{
    const auto s = sprA100();
    EXPECT_DOUBLE_EQ(s.cpuReadBandwidth(false), s.cpuMemory.bandwidth);
}

TEST(SystemTest, CpuReadBandwidthFromCxlIsPoolLimited)
{
    const auto s = withCxl(sprA100());
    EXPECT_DOUBLE_EQ(s.cpuReadBandwidth(true),
                     s.cxl.interleavedBandwidth());
    EXPECT_LT(s.cpuReadBandwidth(true), s.cpuReadBandwidth(false));
}

TEST(SystemTest, CpuReadBandwidthFromMissingCxlPanics)
{
    detail::setThrowOnError(true);
    const auto s = sprA100();
    EXPECT_THROW(s.cpuReadBandwidth(true), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(SystemTest, HostCapacityIncludesCxl)
{
    const auto base = sprA100();
    const auto cxl = withCxl(base);
    EXPECT_DOUBLE_EQ(cxl.hostMemoryCapacity(),
                     base.cpuMemory.capacity +
                         cxl.cxl.totalCapacity());
}

TEST(SystemTest, DgxHasEightGpusAndFabric)
{
    const auto s = dgxA100();
    EXPECT_EQ(s.gpuCount, 8);
    ASSERT_TRUE(s.gpuFabric.has_value());
    EXPECT_EQ(s.gpuFabric->name, "NVLink 3.0");
    EXPECT_NEAR(s.systemCost, 200'000, 1.0);  // §7.8 footnote
}

TEST(SystemTest, GnrA100CostMatchesPaper)
{
    EXPECT_NEAR(gnrA100().systemCost, 22'000, 1.0);  // §7.8 footnote
}

TEST(SystemTest, GraceHopperUsesC2cLink)
{
    const auto s = graceHopper();
    EXPECT_EQ(s.hostLink.name, "NVLink-C2C");
    // §8: 900 GB/s, ~7x a x16 PCIe 5.0 link.
    EXPECT_NEAR(s.hostLink.bandwidth / pcie5x16().bandwidth, 7.0, 11.0);
    EXPECT_GT(s.hostLink.bandwidth, 800e9);
}

TEST(SystemTest, CheapV100SystemPricedLikeGnrA100)
{
    const auto cheap = cheapV100x3();
    EXPECT_EQ(cheap.gpuCount, 3);
    EXPECT_NEAR(cheap.systemCost, gnrA100().systemCost, 2'000);
}

} // namespace
