/**
 * @file
 * Tests for the offline batch scheduler.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "trace/scheduler.hh"

namespace {

using namespace lia;
using namespace lia::trace;

class SchedulerTest : public ::testing::Test
{
  protected:
    hw::SystemConfig sys = hw::sprA100();
    model::ModelConfig m = model::opt30b();
    BatchScheduler scheduler{sys, m};

    std::vector<Request>
    corpus(std::size_t n, std::uint64_t seed = 4)
    {
        AzureTraceGenerator gen(TraceKind::Code, m.maxSeqLen, seed);
        return gen.batch(n);
    }
};

TEST_F(SchedulerTest, EveryRequestScheduledExactlyOnce)
{
    const auto requests = corpus(500);
    const auto result = scheduler.schedule(requests, {});
    std::int64_t scheduled = 0;
    for (const auto &batch : result.batches)
        scheduled += batch.batch;
    EXPECT_EQ(scheduled, 500);
}

TEST_F(SchedulerTest, BatchesRespectCeiling)
{
    SchedulerConfig cfg;
    cfg.maxBatch = 16;
    const auto result = scheduler.schedule(corpus(300), cfg);
    for (const auto &batch : result.batches)
        EXPECT_LE(batch.batch, 16);
}

TEST_F(SchedulerTest, PaddingCoversEveryRequest)
{
    const auto requests = corpus(200);
    SchedulerConfig cfg;
    const auto result = scheduler.schedule(requests, cfg);
    EXPECT_GE(result.paddedTokens, result.usefulTokens);
    EXPECT_GE(result.paddingWaste(), 0.0);
    EXPECT_LT(result.paddingWaste(), 0.8);
}

TEST_F(SchedulerTest, LargerBatchesRaiseThroughput)
{
    const auto requests = corpus(400);
    SchedulerConfig small;
    small.maxBatch = 4;
    SchedulerConfig large;
    large.maxBatch = 256;
    const auto t_small = scheduler.schedule(requests, small);
    const auto t_large = scheduler.schedule(requests, large);
    EXPECT_GT(t_large.throughput(), t_small.throughput() * 1.5);
}

TEST_F(SchedulerTest, CoarserBucketsWasteMorePadding)
{
    const auto requests = corpus(400);
    SchedulerConfig fine;
    fine.inputBucket = 32;
    fine.outputBucket = 8;
    SchedulerConfig coarse;
    coarse.inputBucket = 1024;
    coarse.outputBucket = 64;
    const auto fine_result = scheduler.schedule(requests, fine);
    const auto coarse_result = scheduler.schedule(requests, coarse);
    EXPECT_LT(fine_result.paddingWaste(),
              coarse_result.paddingWaste());
}

TEST_F(SchedulerTest, MakespanIsSumOfBatchLatencies)
{
    const auto result = scheduler.schedule(corpus(100), {});
    double sum = 0;
    for (const auto &batch : result.batches)
        sum += batch.latency;
    EXPECT_NEAR(result.makespan, sum, 1e-9);
}

TEST_F(SchedulerTest, PaddedShapesStayWithinContext)
{
    const auto result = scheduler.schedule(corpus(300), {});
    for (const auto &batch : result.batches)
        EXPECT_LE(batch.lIn + batch.lOut, m.maxSeqLen);
}

TEST_F(SchedulerTest, EmptyCorpusRejected)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(scheduler.schedule({}, {}), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
