/**
 * @file
 * Tests for the Azure-statistics workload generator.
 */

#include <gtest/gtest.h>

#include "trace/azure.hh"

namespace {

using namespace lia::trace;

TEST(AzureTraceTest, RequestsRespectContextBudget)
{
    AzureTraceGenerator gen(TraceKind::Conversation, 2048, 7);
    for (int i = 0; i < 2000; ++i) {
        const auto r = gen.next();
        EXPECT_GE(r.lIn, 32);
        EXPECT_GE(r.lOut, 8);
        EXPECT_LE(r.lIn + r.lOut, 2048);
    }
}

TEST(AzureTraceTest, CodeTraceOutputsNear32)
{
    AzureTraceGenerator gen(TraceKind::Code, 2048, 7);
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(gen.next().lOut);
    EXPECT_NEAR(sum / n, 32.0, 6.0);
}

TEST(AzureTraceTest, ConversationTraceOutputsNear256)
{
    AzureTraceGenerator gen(TraceKind::Conversation, 2048, 7);
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(gen.next().lOut);
    EXPECT_NEAR(sum / n, 256.0, 30.0);
}

TEST(AzureTraceTest, InputLengthsRoughlyUniform)
{
    // §7: input token lengths are uniformly distributed; mean should
    // sit near the middle of [32, max].
    AzureTraceGenerator gen(TraceKind::Code, 2048, 11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(gen.next().lIn);
    EXPECT_NEAR(sum / n, (32 + 2016) / 2.0, 60.0);
}

TEST(AzureTraceTest, DeterministicForSeed)
{
    AzureTraceGenerator a(TraceKind::Code, 2048, 3);
    AzureTraceGenerator b(TraceKind::Code, 2048, 3);
    for (int i = 0; i < 100; ++i) {
        const auto ra = a.next();
        const auto rb = b.next();
        EXPECT_EQ(ra.lIn, rb.lIn);
        EXPECT_EQ(ra.lOut, rb.lOut);
    }
}

TEST(AzureTraceTest, BatchProducesRequestedCount)
{
    AzureTraceGenerator gen(TraceKind::Code, 2048, 5);
    EXPECT_EQ(gen.batch(64).size(), 64u);
}

TEST(SweepTest, LinSweepCapsAtModelBudget)
{
    const auto sweep32 = standardLinSweep(32);
    EXPECT_EQ(sweep32.back(), 2016);  // L_max for L_out = 32
    const auto sweep256 = standardLinSweep(256);
    EXPECT_EQ(sweep256.back(), 1792);  // L_max for L_out = 256
    for (std::size_t i = 1; i < sweep32.size(); ++i)
        EXPECT_GT(sweep32[i], sweep32[i - 1]);
}

TEST(SweepTest, BatchSweepMatchesEvaluation)
{
    EXPECT_EQ(standardBatchSweep(),
              (std::vector<std::int64_t>{1, 64, 900}));
}

} // namespace
