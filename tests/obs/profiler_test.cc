/**
 * @file
 * Tests for the wall-clock kernel profiler: aggregation, the
 * null-profiler zero-overhead scope, the thread-pool observer hook,
 * and the executor gating — profiling on vs off must produce
 * bit-identical generations.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "base/thread_pool.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/profiler.hh"
#include "runtime/executor.hh"

namespace {

using namespace lia;

TEST(KernelProfilerTest, RecordAggregatesPerName)
{
    obs::KernelProfiler profiler;
    profiler.record("matmul", 0.25);
    profiler.record("matmul", 0.75);
    profiler.record("softmax", 0.5);

    EXPECT_EQ(profiler.calls("matmul"), 2u);
    EXPECT_EQ(profiler.calls("softmax"), 1u);
    EXPECT_EQ(profiler.calls("absent"), 0u);
    EXPECT_DOUBLE_EQ(profiler.totalSeconds("matmul"), 1.0);
    EXPECT_DOUBLE_EQ(profiler.totalSeconds("absent"), 0.0);

    const auto stats = profiler.stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_DOUBLE_EQ(stats.at("matmul").mean(), 0.5);
}

TEST(KernelProfilerTest, ScopeRecordsOneSample)
{
    obs::KernelProfiler profiler;
    {
        obs::KernelProfiler::Scope scope(&profiler, "unit");
    }
    EXPECT_EQ(profiler.calls("unit"), 1u);
    EXPECT_GE(profiler.totalSeconds("unit"), 0.0);
}

TEST(KernelProfilerTest, NullProfilerScopeIsInert)
{
    // The disabled path: constructing and destroying a scope against
    // a null profiler must be a no-op (it never reads the clock).
    obs::KernelProfiler::Scope scope(nullptr, "unused");
    SUCCEED();
}

TEST(KernelProfilerTest, ToJsonListsEveryKernel)
{
    obs::KernelProfiler profiler;
    profiler.record("k1", 0.5);
    const std::string json = profiler.toJson();
    EXPECT_NE(json.find("\"k1\""), std::string::npos);
    EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
    EXPECT_NE(json.find("\"total_s\":0.5"), std::string::npos);
    EXPECT_EQ(obs::KernelProfiler().toJson(), "{\n}\n");
}

TEST(KernelProfilerTest, ThreadPoolObserverSeesDispatchedLoops)
{
    base::ThreadPool pool(2);
    obs::KernelProfiler profiler;
    pool.setObserver(&profiler);

    std::atomic<std::int64_t> sum{0};
    pool.parallelFor(1000, 1, [&sum](std::int64_t b, std::int64_t e) {
        sum.fetch_add(e - b, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000);
    EXPECT_EQ(profiler.calls("thread_pool.parallel_for"), 1u);

    // Inline (too-small) loops never dispatch, so they are not
    // observed — the fast path stays untouched.
    pool.parallelFor(1, 64, [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(profiler.calls("thread_pool.parallel_for"), 1u);

    pool.setObserver(nullptr);
    pool.parallelFor(1000, 1, [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(profiler.calls("thread_pool.parallel_for"), 1u);
}

// --- Executor gating ------------------------------------------------

std::vector<std::vector<std::int64_t>>
somePrompts(const model::ModelConfig &m)
{
    std::vector<std::vector<std::int64_t>> out;
    for (std::int64_t b = 0; b < 2; ++b) {
        std::vector<std::int64_t> p;
        for (std::int64_t t = 0; t < 8; ++t)
            p.push_back((7 * b + 3 * t + 1) % m.vocabSize);
        out.push_back(std::move(p));
    }
    return out;
}

TEST(ExecutorProfilingTest, ProfilingNeverChangesResults)
{
    const auto sys = hw::sprA100();
    const auto m = model::tinyOpt();
    Rng rngA(42), rngB(42);

    runtime::ExecutorConfig plain;
    runtime::CooperativeExecutor off(
        sys, runtime::TransformerWeights::random(m, rngA), plain);

    runtime::ExecutorConfig profiled;
    profiled.profileKernels = true;
    runtime::CooperativeExecutor on(
        sys, runtime::TransformerWeights::random(m, rngB), profiled);

    EXPECT_EQ(off.kernelProfiler(), nullptr);
    ASSERT_NE(on.kernelProfiler(), nullptr);

    const auto prompts = somePrompts(m);
    EXPECT_EQ(off.generate(prompts, 6), on.generate(prompts, 6));

    // The profiled run attributed real wall time to the kernels the
    // forward pass exercises.
    const auto *profiler = on.kernelProfiler();
    EXPECT_GT(profiler->calls("matmul_packed"), 0u);
    EXPECT_GT(profiler->calls("softmax_rows"), 0u);
    EXPECT_GT(profiler->calls("layer_norm"), 0u);
    EXPECT_GT(profiler->totalSeconds("matmul_packed"), 0.0);
}

} // namespace
