/**
 * @file
 * Tests for the structured-event sinks and the Chrome-trace exporter:
 * deterministic JSON rendering, writer output shape, schema validity
 * of a real serving run (span balance, per-track monotonicity), the
 * golden-trace byte-compare, and the null-sink identity (tracing
 * never changes a run's results).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "obs/series.hh"
#include "obs/sink.hh"
#include "serve/engine.hh"
#include "support/serving_checks.hh"

namespace {

using namespace lia;

TEST(JsonRenderTest, NumbersAreDeterministicAndFinite)
{
    EXPECT_EQ(obs::jsonNumber(0.0), "0");
    EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
    EXPECT_EQ(obs::jsonNumber(-3.0), "-3");
    // JSON has no Inf/NaN literal; both degrade to 0.
    EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::infinity()),
              "0");
    EXPECT_EQ(obs::jsonNumber(std::nan("")), "0");
    // Same value, same rendering — the byte-compare rests on this.
    EXPECT_EQ(obs::jsonNumber(0.1), obs::jsonNumber(0.1));
}

TEST(JsonRenderTest, EscapeHandlesSpecialCharacters)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(obs::jsonEscape(std::string("a\x01") + "b"),
              "a\\u0001b");
}

TEST(JsonRenderTest, RenderArgsBuildsObjectBody)
{
    EXPECT_EQ(obs::renderArgs({}), "");
    const obs::Args args = {obs::arg("n", std::int64_t{3}),
                            obs::arg("t", 1.5),
                            obs::arg("s", "x\"y")};
    EXPECT_EQ(obs::renderArgs(args),
              "\"n\":3,\"t\":1.5,\"s\":\"x\\\"y\"");
}

TEST(ChromeTraceWriterTest, RecordsEventsInEmissionOrder)
{
    obs::ChromeTraceWriter writer;
    const obs::Track track{1, 2};
    writer.setTrackName(track, "proc", "thread");
    writer.beginSpan(track, "work", 0.5, {obs::arg("k", 1.0)});
    writer.instant(track, "mark", 0.75);
    writer.counter(track, "gauge", 0.75, 42.0);
    writer.endSpan(track, 1.0);

    const auto &events = writer.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_EQ(events[0].name, "work");
    EXPECT_EQ(events[1].phase, 'i');
    EXPECT_EQ(events[2].phase, 'C');
    EXPECT_EQ(events[3].phase, 'E');
    EXPECT_TRUE(events[3].name.empty());
    EXPECT_DOUBLE_EQ(events[3].seconds, 1.0);
}

TEST(ChromeTraceWriterTest, WriteEmitsMetadataAndMicroseconds)
{
    obs::ChromeTraceWriter writer;
    const obs::Track track{0, 3};
    writer.setTrackName(track, "engine", "lane");
    writer.beginSpan(track, "span", 0.001);
    writer.endSpan(track, 0.002);

    const std::string json = writer.toJson();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"engine\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"lane\""), std::string::npos);
    // 0.001 s -> 1000.000 microseconds.
    EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST(TeeSinkTest, FansOutToAllChildren)
{
    obs::ChromeTraceWriter a, b;
    obs::TeeSink tee({&a, &b});
    const obs::Track track{0, 0};
    tee.beginSpan(track, "x", 0.0);
    tee.endSpan(track, 1.0);
    tee.counter(track, "c", 1.0, 2.0);
    EXPECT_EQ(a.events().size(), 3u);
    EXPECT_EQ(b.events().size(), 3u);
}

// --- Serving-run schema and determinism ----------------------------

serve::Config
tracedConfig()
{
    // Preemptive policy under a tight KV budget: exercises admission,
    // chunked prefill, preemption (swap and recompute), and shedding,
    // so every event type the engine can emit appears in the trace.
    serve::Config cfg;
    cfg.arrivalRatePerSecond = 10.0 / 60.0;
    cfg.requests = 60;
    cfg.seed = 11;
    cfg.trace = trace::TraceKind::Conversation;
    cfg.policy = serve::SchedulerPolicy::Preemptive;
    cfg.maxBatch = 16;
    cfg.kvBudgetCapBytes = 4e9;
    cfg.prefillChunkTokens = 256;
    return cfg;
}

serve::Result
runTraced(const serve::Config &cfg)
{
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

TEST(ServingTraceTest, SchemaIsValid)
{
    obs::ChromeTraceWriter writer;
    serve::Config cfg = tracedConfig();
    cfg.sink = &writer;
    const auto result = runTraced(cfg);
    EXPECT_GT(result.metrics.completed, 0u);
    ASSERT_FALSE(writer.events().empty());

    // Span balance and per-track monotonicity: every E closes an open
    // B on its track, no track's event stream ever moves backwards in
    // time, and every span is closed by drain.
    std::map<obs::Track, int> depth;
    std::map<obs::Track, double> last;
    for (const auto &event : writer.events()) {
        auto t = last.find(event.track);
        if (t != last.end()) {
            EXPECT_GE(event.seconds, t->second)
                << "track (" << event.track.pid << ","
                << event.track.tid << ") went backwards at event '"
                << event.name << "'";
        }
        last[event.track] = event.seconds;
        if (event.phase == 'B') {
            ++depth[event.track];
        } else if (event.phase == 'E') {
            ASSERT_GT(depth[event.track], 0)
                << "E without matching B on track ("
                << event.track.pid << "," << event.track.tid << ")";
            --depth[event.track];
        }
    }
    for (const auto &[track, open] : depth) {
        EXPECT_EQ(open, 0) << "track (" << track.pid << ","
                           << track.tid << ") left a span open";
    }
}

TEST(ServingTraceTest, TraceCoversTheInterestingEvents)
{
    obs::ChromeTraceWriter writer;
    serve::Config cfg = tracedConfig();
    cfg.sink = &writer;
    const auto result = runTraced(cfg);

    std::map<std::string, std::size_t> names;
    for (const auto &event : writer.events())
        if (!event.name.empty())
            ++names[event.name];
    EXPECT_EQ(names["iteration"], result.metrics.iterations);
    EXPECT_EQ(names["arrive"], result.requests.size());
    EXPECT_EQ(names["finish"], result.metrics.completed);
    EXPECT_EQ(names["queue_depth"], result.metrics.iterations);
    if (result.metrics.preemptions > 0) {
        EXPECT_EQ(names["preempt.swap_out"] + names["preempt.evict"],
                  result.metrics.preemptions);
    }
    if (result.metrics.swapOuts > 0) {
        EXPECT_GT(names["transfer"], 0u);
    }
}

TEST(ServingTraceTest, GoldenTraceIsByteIdenticalAcrossRuns)
{
    obs::ChromeTraceWriter first, second;
    serve::Config cfg = tracedConfig();
    cfg.sink = &first;
    runTraced(cfg);
    cfg.sink = &second;
    runTraced(cfg);
    EXPECT_EQ(first.toJson(), second.toJson());
}

TEST(ServingTraceTest, TracingNeverChangesResults)
{
    obs::ChromeTraceWriter writer;
    obs::SeriesRegistry series;
    obs::TeeSink tee({&writer, &series});

    serve::Config untraced = tracedConfig();
    serve::Config traced = tracedConfig();
    traced.sink = &tee;
    const auto a = runTraced(untraced);
    const auto b = runTraced(traced);
    test::expectIdenticalRuns(a, b);
}

TEST(ServingTraceTest, NullSinkBehavesLikeNoSink)
{
    obs::NullSink null;
    serve::Config with_null = tracedConfig();
    with_null.sink = &null;
    const auto a = runTraced(tracedConfig());
    const auto b = runTraced(with_null);
    test::expectIdenticalRuns(a, b);
}

} // namespace
