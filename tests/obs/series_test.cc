/**
 * @file
 * Tests for the counter time-series registry: sample recording,
 * lookup, JSON export, and the engine-driven series a serving run
 * produces.
 */

#include <gtest/gtest.h>

#include "hw/system.hh"
#include "model/config.hh"
#include "obs/series.hh"
#include "serve/engine.hh"

namespace {

using namespace lia;

TEST(SeriesRegistryTest, RecordsOnlyCounterSamples)
{
    obs::SeriesRegistry registry;
    const obs::Track track{0, 0};
    registry.beginSpan(track, "ignored", 0.0, {});
    registry.instant(track, "ignored", 0.5, {});
    registry.counter(track, "depth", 1.0, 3.0);
    registry.counter(track, "depth", 2.0, 4.0);
    registry.counter(track, "occupancy", 2.0, 0.5);
    registry.endSpan(track, 3.0);

    ASSERT_EQ(registry.series().size(), 2u);
    const auto &depth = registry.at("depth");
    ASSERT_EQ(depth.size(), 2u);
    EXPECT_DOUBLE_EQ(depth[0].seconds, 1.0);
    EXPECT_DOUBLE_EQ(depth[0].value, 3.0);
    EXPECT_DOUBLE_EQ(depth[1].value, 4.0);
    EXPECT_TRUE(registry.at("never-sampled").empty());
}

TEST(SeriesRegistryTest, ToJsonHasParallelTimeValueArrays)
{
    obs::SeriesRegistry registry;
    registry.counter({0, 0}, "g", 0.5, 2.0);
    registry.counter({0, 0}, "g", 1.5, 3.0);
    EXPECT_EQ(registry.toJson(),
              "{\n\"g\":{\"t\":[0.5,1.5],\"v\":[2,3]}\n}\n");
}

TEST(SeriesRegistryTest, MergeInterleavesDisjointTimestamps)
{
    obs::SeriesRegistry a, b;
    a.counter({0, 0}, "g", 0.0, 1.0);
    a.counter({0, 0}, "g", 2.0, 3.0);
    b.counter({1, 0}, "g", 1.0, 2.0);
    b.counter({1, 0}, "g", 3.0, 4.0);
    a.merge(b);
    const auto &merged = a.at("g");
    ASSERT_EQ(merged.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(merged[i].seconds, static_cast<double>(i));
        EXPECT_DOUBLE_EQ(merged[i].value, static_cast<double>(i + 1));
    }
}

TEST(SeriesRegistryTest, MergeIsStableOnEqualTimestamps)
{
    // Overlapping timestamps keep the existing registry's samples
    // first — merging replicas in index order is deterministic.
    obs::SeriesRegistry a, b;
    a.counter({0, 0}, "g", 1.0, 10.0);
    b.counter({1, 0}, "g", 1.0, 20.0);
    b.counter({1, 0}, "g", 1.0, 21.0);
    a.merge(b);
    const auto &merged = a.at("g");
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_DOUBLE_EQ(merged[0].value, 10.0);
    EXPECT_DOUBLE_EQ(merged[1].value, 20.0);
    EXPECT_DOUBLE_EQ(merged[2].value, 21.0);
    // JSON render after merge stays byte-stable.
    EXPECT_EQ(a.toJson(),
              "{\n\"g\":{\"t\":[1,1,1],\"v\":[10,20,21]}\n}\n");
}

TEST(SeriesRegistryTest, MergeCopiesUnknownSeriesWhole)
{
    obs::SeriesRegistry a, b;
    a.counter({0, 0}, "known", 0.0, 1.0);
    b.counter({1, 0}, "other", 5.0, 7.0);
    b.counter({1, 0}, "other", 6.0, 8.0);
    a.merge(b);
    ASSERT_EQ(a.series().size(), 2u);
    const auto &other = a.at("other");
    ASSERT_EQ(other.size(), 2u);
    EXPECT_DOUBLE_EQ(other[0].seconds, 5.0);
    EXPECT_DOUBLE_EQ(other[1].value, 8.0);
    // The donor registry is untouched.
    EXPECT_EQ(b.series().size(), 1u);
}

TEST(SeriesRegistryTest, ServingRunProducesPerIterationSeries)
{
    obs::SeriesRegistry registry;
    serve::Config cfg;
    cfg.arrivalRatePerSecond = 8.0 / 60.0;
    cfg.requests = 30;
    cfg.seed = 5;
    cfg.maxBatch = 16;
    cfg.sink = &registry;
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    const auto result = engine.run();

    const auto &depth = registry.at("queue_depth");
    const auto &occupancy = registry.at("batch_occupancy");
    ASSERT_EQ(depth.size(), result.metrics.iterations);
    ASSERT_EQ(occupancy.size(), result.metrics.iterations);
    // Sampled at iteration starts on the simulated axis: monotone
    // timestamps, occupancy within the configured ceiling.
    for (std::size_t i = 1; i < depth.size(); ++i)
        EXPECT_GE(depth[i].seconds, depth[i - 1].seconds);
    for (const auto &point : occupancy) {
        EXPECT_GE(point.value, 0.0);
        EXPECT_LE(point.value, 16.0);
    }
}

} // namespace
