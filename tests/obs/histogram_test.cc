/**
 * @file
 * Tests for the deterministic log-bucketed streaming histogram:
 * bucket-edge exactness, quantile semantics, loss-free merges, the
 * byte-stable JSON rendering, and the Prometheus text exposition.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "obs/histogram.hh"

namespace {

using namespace lia;

TEST(HistogramTest, EmptyHistogramIsAllZeros)
{
    obs::Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.p999(), 0.0);
}

TEST(HistogramTest, TotalsAreExact)
{
    obs::Histogram h;
    h.add(1.0);
    h.add(2.0);
    h.add(4.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 7.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, NonPositiveValuesLandInTheZeroBucket)
{
    obs::Histogram h;
    h.add(0.0);
    h.add(-1.5);
    h.add(0.5);
    EXPECT_EQ(h.zeros(), 2u);
    EXPECT_EQ(h.count(), 3u);
    // min/max still see the raw values.
    EXPECT_DOUBLE_EQ(h.min(), -1.5);
    EXPECT_DOUBLE_EQ(h.max(), 0.5);
    // Rank 1 and 2 sit in the zero bucket.
    EXPECT_DOUBLE_EQ(h.quantile(30.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(60.0), 0.0);
    EXPECT_GT(h.quantile(100.0), 0.0);
}

TEST(HistogramTest, BucketEdgesFollowGeometricGrowth)
{
    obs::Histogram h;
    const auto &b = h.bounds();
    EXPECT_DOUBLE_EQ(h.upperEdge(0), b.lo);
    EXPECT_DOUBLE_EQ(h.upperEdge(1), b.lo * b.growth);
    // Edges are materialised by repeated multiplication, so the edge
    // list is exactly reproducible — not merely close.
    EXPECT_EQ(h.upperEdge(37), obs::Histogram().upperEdge(37));
}

TEST(HistogramTest, QuantileIsConservativeWithinOneBucket)
{
    // The quantile comes back as the holding bucket's upper edge
    // (clamped to the max), so it never under-reports and overstates
    // by at most the growth factor.
    obs::Histogram h;
    SampleStats exact;
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        const double v = 0.001 + 10.0 * rng.uniform();
        h.add(v);
        exact.add(v);
    }
    for (double pct : {50.0, 90.0, 95.0, 99.0, 99.9}) {
        const double estimated = h.quantile(pct);
        const double truth = exact.percentile(pct);
        EXPECT_GE(estimated * h.bounds().growth * (1 + 1e-12), truth)
            << "p" << pct << " under-reported";
        EXPECT_LE(estimated, h.max());
    }
}

TEST(HistogramTest, QuantileOfSingleSampleIsThatSample)
{
    obs::Histogram h;
    h.add(0.125);
    // Clamped to the observed max: better than the bucket edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.125);
    EXPECT_DOUBLE_EQ(h.quantile(50.0), 0.125);
    EXPECT_DOUBLE_EQ(h.quantile(100.0), 0.125);
}

TEST(HistogramTest, MergeMatchesCombinedAdds)
{
    obs::Histogram a, b, combined;
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform() * 4.0 - 0.5;
        if (i % 2 == 0) {
            a.add(v);
        } else {
            b.add(v);
        }
        combined.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.zeros(), combined.zeros());
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
    EXPECT_EQ(a.buckets(), combined.buckets());
    for (double pct : {10.0, 50.0, 95.0, 99.9})
        EXPECT_DOUBLE_EQ(a.quantile(pct), combined.quantile(pct));
}

TEST(HistogramTest, MergeWithEmptyIsANoOp)
{
    obs::Histogram a, empty;
    a.add(1.0);
    a.add(2.0);
    const std::string before = a.toJson();
    a.merge(empty);
    EXPECT_EQ(a.toJson(), before);

    obs::Histogram target;
    target.merge(a);
    EXPECT_EQ(target.toJson(), before);
}

TEST(HistogramTest, JsonIsByteStable)
{
    auto build = [] {
        obs::Histogram h;
        h.add(0.1);
        h.add(0.25);
        h.add(-1.0);
        return h.toJson();
    };
    const std::string json = build();
    EXPECT_EQ(json, build());
    EXPECT_NE(json.find("\"count\":3"), std::string::npos);
    EXPECT_NE(json.find("\"zeros\":1"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":{"), std::string::npos);
}

TEST(HistogramTest, PromExpositionHasCumulativeBuckets)
{
    obs::Histogram h;
    h.add(0.5);
    h.add(0.5);
    h.add(2.0);
    std::ostringstream os;
    h.writeProm(os, "t_seconds", "test histogram");
    const std::string text = os.str();
    EXPECT_NE(text.find("# HELP t_seconds test histogram"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE t_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("t_seconds_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("t_seconds_count 3"), std::string::npos);
    EXPECT_NE(text.find("t_seconds_sum 3"), std::string::npos);

    // Cumulative counts never decrease along the bucket lines.
    std::istringstream lines(text);
    std::string line;
    std::uint64_t prev = 0;
    while (std::getline(lines, line)) {
        const auto brace = line.find("} ");
        if (line.rfind("t_seconds_bucket", 0) != 0 ||
            brace == std::string::npos)
            continue;
        const std::uint64_t n =
            std::stoull(line.substr(brace + 2));
        EXPECT_GE(n, prev);
        prev = n;
    }

    // A label body threads through every sample line.
    std::ostringstream labelled;
    h.writeProm(labelled, "t_seconds", "test", "replica=\"2\"");
    EXPECT_NE(labelled.str().find(
                  "t_seconds_bucket{replica=\"2\",le="),
              std::string::npos);
    EXPECT_NE(labelled.str().find("t_seconds_count{replica=\"2\"} 3"),
              std::string::npos);
}

} // namespace
