/**
 * @file
 * Tests for per-request tail-latency attribution (DESIGN.md §13):
 * synthetic event-stream reconstruction, the golden byte-compare on
 * the blame report, the randomized partition property — every
 * finished request's phase segments exactly partition [arrive,
 * finish] and sum to its end-to-end latency, across preemption,
 * swapping, shedding, and speculative decoding — and the identity
 * guarantee that attaching a recorder changes nothing (DESIGN.md §8).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "hw/system.hh"
#include "model/config.hh"
#include "obs/timeline.hh"
#include "serve/engine.hh"
#include "support/serving_checks.hh"

namespace {

using namespace lia;

// --- Synthetic event streams ---------------------------------------

TEST(TimelineRecorderTest, ReconstructsASimpleLifecycle)
{
    obs::TimelineRecorder rec;
    const obs::Track req{0, 7};
    rec.instant(req, "arrive", 1.0);
    rec.setTrackName(req, "engine", "req 7");
    rec.beginSpan(req, "queued", 1.0);
    rec.endSpan(req, 2.5);
    rec.beginSpan(req, "prefill", 2.5);
    rec.endSpan(req, 4.0);
    rec.beginSpan(req, "decode", 4.0);
    rec.endSpan(req, 9.0);
    rec.instant(req, "finish", 9.0);

    ASSERT_EQ(rec.arrived(), 1u);
    ASSERT_EQ(rec.finishedCount(), 1u);
    const auto &record = rec.records().at(req);
    EXPECT_EQ(record.label, "req 7");
    EXPECT_DOUBLE_EQ(record.e2e(), 8.0);
    EXPECT_TRUE(record.contiguous());
    EXPECT_DOUBLE_EQ(record.segmentSeconds(), 8.0);
    const auto phase = record.phaseSeconds();
    EXPECT_DOUBLE_EQ(phase.at("queued"), 1.5);
    EXPECT_DOUBLE_EQ(phase.at("prefill"), 1.5);
    EXPECT_DOUBLE_EQ(phase.at("decode"), 5.0);
    EXPECT_EQ(rec.phases(),
              (std::vector<std::string>{"queued", "prefill",
                                        "decode"}));
}

TEST(TimelineRecorderTest, IgnoresTracksWithoutArrive)
{
    obs::TimelineRecorder rec;
    const obs::Track engine{0, 0};
    rec.beginSpan(engine, "iteration", 0.0);
    rec.endSpan(engine, 1.0);
    rec.instant(engine, "iteration.done", 1.0);
    rec.counter(engine, "queue_depth", 1.0, 3.0);
    EXPECT_EQ(rec.arrived(), 0u);
    EXPECT_TRUE(rec.records().empty());
}

TEST(TimelineRecorderTest, UnfinishedRequestsStayOutOfTheBlame)
{
    obs::TimelineRecorder rec;
    const obs::Track done{0, 1}, rejected{0, 2}, shed{0, 3};
    rec.instant(done, "arrive", 0.0);
    rec.beginSpan(done, "decode", 0.0);
    rec.endSpan(done, 1.0);
    rec.instant(done, "finish", 1.0);
    // Rejected at admission: arrive, no spans, no finish.
    rec.instant(rejected, "arrive", 0.5);
    rec.instant(rejected, "reject.capacity", 0.5);
    // Shed by the SLO scheduler: queued span closes, no finish.
    rec.instant(shed, "arrive", 0.7);
    rec.beginSpan(shed, "queued", 0.7);
    rec.endSpan(shed, 2.0);
    rec.instant(shed, "shed.slo", 2.0);

    EXPECT_EQ(rec.arrived(), 3u);
    EXPECT_EQ(rec.finishedCount(), 1u);
    EXPECT_FALSE(rec.records().at(rejected).finished);
    EXPECT_FALSE(rec.records().at(shed).contiguous());
    const std::string blame = rec.blameReport();
    EXPECT_NE(blame.find("\"requests\":3"), std::string::npos);
    EXPECT_NE(blame.find("\"finished\":1"), std::string::npos);
}

TEST(TimelineRecorderTest, NestedSpansCountOnlyTheTopLevel)
{
    obs::TimelineRecorder rec;
    const obs::Track req{0, 4};
    rec.instant(req, "arrive", 0.0);
    rec.beginSpan(req, "decode", 0.0);
    rec.beginSpan(req, "draft", 0.25); // hypothetical nested span
    rec.endSpan(req, 0.5);
    rec.endSpan(req, 2.0);
    rec.instant(req, "finish", 2.0);
    const auto &record = rec.records().at(req);
    ASSERT_EQ(record.segments.size(), 1u);
    EXPECT_EQ(record.segments[0].phase, "decode");
    EXPECT_TRUE(record.contiguous());
    EXPECT_DOUBLE_EQ(record.segmentSeconds(), 2.0);
}

TEST(TimelineRecorderTest, TailCountIsAtLeastOne)
{
    obs::TimelineRecorder rec;
    for (int i = 0; i < 3; ++i) {
        const obs::Track req{0, i + 1};
        rec.instant(req, "arrive", 0.0);
        rec.beginSpan(req, "decode", 0.0);
        rec.endSpan(req, 1.0 + i);
        rec.instant(req, "finish", 1.0 + i);
    }
    // ceil(3 * 0.1%) = 1: the p99.9 tail still names a culprit.
    const std::string blame = rec.blameReport({99.9});
    EXPECT_NE(blame.find("\"pct\":99.9,\"count\":1"),
              std::string::npos);
    // The slowest request (tid 3, e2e 3 s) is the blamed one.
    EXPECT_NE(blame.find("\"slowest\":{\"pid\":0,\"tid\":3"),
              std::string::npos);
}

// --- Real serving runs ---------------------------------------------

serve::Config
attributedConfig()
{
    // Preemptive policy under a tight KV budget (mirrors the obs
    // golden-trace config): admission queueing, chunked prefill,
    // preemption with swap and recompute exits all appear.
    serve::Config cfg;
    cfg.arrivalRatePerSecond = 10.0 / 60.0;
    cfg.requests = 60;
    cfg.seed = 11;
    cfg.trace = trace::TraceKind::Conversation;
    cfg.policy = serve::SchedulerPolicy::Preemptive;
    cfg.maxBatch = 16;
    cfg.kvBudgetCapBytes = 4e9;
    cfg.prefillChunkTokens = 256;
    return cfg;
}

serve::Result
runWith(const serve::Config &cfg)
{
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

void
expectExactAttribution(const obs::TimelineRecorder &rec,
                       const serve::Result &result)
{
    EXPECT_EQ(rec.arrived(), result.requests.size());
    EXPECT_EQ(rec.finishedCount(), result.metrics.completed);
    ASSERT_GT(rec.finishedCount(), 0u);
    for (const auto *record : rec.finished()) {
        EXPECT_TRUE(record->contiguous())
            << "gaps in request tid " << record->track.tid;
        const double e2e = record->e2e();
        EXPECT_LE(std::abs(record->segmentSeconds() - e2e),
                  1e-9 * std::max(1.0, e2e))
            << "phase sums diverge on tid " << record->track.tid;
    }
}

TEST(TimelineAttributionTest, PhaseSumsEqualE2eOnThePreemptiveRun)
{
    obs::TimelineRecorder rec;
    serve::Config cfg = attributedConfig();
    cfg.sink = &rec;
    const auto result = runWith(cfg);
    expectExactAttribution(rec, result);
    // This config preempts: stall phases must show up in the report.
    ASSERT_GT(result.metrics.preemptions, 0u);
    const auto phases = rec.phases();
    const auto has = [&phases](const char *name) {
        for (const auto &phase : phases)
            if (phase == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("queued"));
    EXPECT_TRUE(has("prefill"));
    EXPECT_TRUE(has("decode"));
    EXPECT_TRUE(has("preempted") || has("swapped") ||
                has("recompute"));
}

TEST(TimelineAttributionTest, PartitionHoldsAcrossFeaturesAndSeeds)
{
    // Randomized property sweep: whatever the scheduler does to a
    // request — shedding, speculation, swap, recompute — the finished
    // timeline partitions exactly.
    for (const std::uint64_t seed : {3u, 17u, 29u}) {
        for (const auto policy :
             {serve::SchedulerPolicy::SloAware,
              serve::SchedulerPolicy::Preemptive}) {
            serve::Config cfg = attributedConfig();
            cfg.seed = seed;
            cfg.policy = policy;
            if (policy == serve::SchedulerPolicy::SloAware) {
                cfg.kvBudgetCapBytes = 0;
                cfg.prefillChunkTokens = 0;
                cfg.slo.ttft = 20.0;
                cfg.slo.tbt = 0.5;
            }
            if (seed == 17u) {
                cfg.spec.enabled = true;
                cfg.spec.draftTokens = 4;
            }
            obs::TimelineRecorder rec;
            cfg.sink = &rec;
            const auto result = runWith(cfg);
            expectExactAttribution(rec, result);
            EXPECT_GE(rec.arrived(), rec.finishedCount());
        }
    }
}

TEST(TimelineAttributionTest, BlameReportIsByteIdenticalAcrossRuns)
{
    obs::TimelineRecorder first, second;
    serve::Config cfg = attributedConfig();
    cfg.sink = &first;
    runWith(cfg);
    cfg.sink = &second;
    runWith(cfg);
    const std::string a = first.blameReport();
    EXPECT_EQ(a, second.blameReport());
    EXPECT_NE(a.find("\"tails\":[{\"pct\":90"), std::string::npos);
    EXPECT_NE(a.find("\"e2e_hist\":{"), std::string::npos);
    EXPECT_NE(a.find("\"phase_hist\":{"), std::string::npos);
}

TEST(TimelineAttributionTest, RecordingNeverChangesResults)
{
    obs::TimelineRecorder rec;
    serve::Config plain = attributedConfig();
    serve::Config recorded = attributedConfig();
    recorded.sink = &rec;
    const auto a = runWith(plain);
    const auto b = runWith(recorded);
    test::expectIdenticalRuns(a, b);
}

} // namespace
